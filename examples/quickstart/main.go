// Quickstart: build a Columbia node, probe it with the HPCC subset on the
// virtual-time engine, and run a real (host-executed) NPB CG class S to see
// the numerical side of the library.
package main

import (
	"fmt"

	"columbia/internal/hpcc"
	"columbia/internal/machine"
	"columbia/internal/npb"
	"columbia/internal/par"
	"columbia/internal/report"
	"columbia/internal/vmpi"
)

func main() {
	fmt.Println("== Quickstart: one BX2b box ==")
	cl := machine.NewSingleNode(machine.AltixBX2b)
	fmt.Printf("node: %d CPUs, %.2f Tflop/s peak, %s\n\n",
		cl.TotalCPUs(), cl.PeakFlops()/1e12, cl.Nodes[0].Spec.Type)

	// Modelled microbenchmarks.
	t := report.New("Modelled microbenchmarks (BX2b)", "Metric", "Value")
	dense := machine.Dense(cl, 8)
	t.AddF("DGEMM per CPU (Gflop/s)", hpcc.DgemmModel(dense)/1e9)
	t.AddF("STREAM Triad, dense (GB/s)", hpcc.StreamModel(dense).Triad/1e9)
	t.AddF("STREAM Triad, 1 CPU (GB/s)", hpcc.StreamModel(machine.Dense(cl, 1)).Triad/1e9)
	var beff hpcc.BeffResult
	vmpi.Run(vmpi.Config{Cluster: cl, Procs: 64}, func(c par.Comm) {
		r := hpcc.Beff(c, 3)
		if c.Rank() == 0 {
			beff = r
		}
	})
	t.AddF("Ping-pong latency, 64 CPUs (µs)", beff.PingPong.Latency*1e6)
	t.AddF("Ping-pong bandwidth (GB/s)", beff.PingPong.Bandwidth/1e9)
	t.AddF("Random-ring bandwidth per CPU (GB/s)", beff.Random.Bandwidth/1e9)
	fmt.Println(t)

	// A real kernel on the host: NPB CG class S, serial vs 4-rank MPI.
	serial := npb.RunCGSerial(npb.CGClasses[npb.ClassS])
	fmt.Printf("NPB CG class S (real execution): zeta = %.13f\n", serial.Zeta)
	par.Run(4, func(c par.Comm) {
		r := npb.RunCGMPI(c, npb.CGClasses[npb.ClassS])
		if c.Rank() == 0 {
			fmt.Printf("same kernel on 4 goroutine ranks:  zeta = %.13f\n", r.Zeta)
		}
	})
}
