// Npbsweep: hybrid programming-model exploration with the multi-zone NPBs —
// the process/thread trade-off of Fig. 9, the pinning effect of Fig. 7, and
// a real coupled multi-zone solve for validation.
package main

import (
	"fmt"

	"columbia/internal/machine"
	"columbia/internal/netmodel"
	"columbia/internal/npb"
	"columbia/internal/npbmz"
	"columbia/internal/par"
	"columbia/internal/pinning"
	"columbia/internal/report"
	"columbia/internal/vmpi"
)

func stepTime(bench string, class npb.Class, procs, threads int, pin pinning.Method) float64 {
	cl := machine.NewSingleNode(machine.AltixBX2b)
	fn, info := npbmz.Skeleton(bench, class, procs)
	res := vmpi.Run(vmpi.Config{
		Cluster: cl,
		Net:     netmodel.New(cl),
		Procs:   procs,
		Threads: threads,
		Pin:     pin,
		OMP:     info.OMPOpts(),
	}, fn)
	return res.Time / npbmz.SkeletonIters
}

func main() {
	fmt.Println("== Multi-zone NPB hybrid sweep (BX2b) ==")

	// Real coupled mini multi-zone run (validates the exchange logic).
	p := npbmz.Params{XZones: 3, YZones: 2, Niter: 2}
	serial := npbmz.RunMiniSerial(p, 8, 2, 1)
	var dist []float64
	par.Run(3, func(c par.Comm) {
		norms := npbmz.RunMiniMPI(c, p, 8, 2, 1)
		if c.Rank() == 0 {
			dist = norms
		}
	})
	fmt.Printf("real 6-zone coupled solve: serial zone-0 norm %.12f, distributed %.12f (equal: %v)\n\n",
		serial[0], dist[0], serial[0] == dist[0])

	// BT-MZ class C: same 256 CPUs, different process/thread splits.
	zones := npbmz.Classes[npb.ClassC].Zones()
	t := report.New("BT-MZ class C on 256 CPUs: process/thread splits",
		"procs x threads", "imbalance", "time/step (s)")
	for _, cfg := range []struct{ p, th int }{{256, 1}, {128, 2}, {64, 4}, {32, 8}} {
		if cfg.p > zones {
			continue
		}
		_, info := npbmz.Skeleton("BT-MZ", npb.ClassC, cfg.p)
		t.AddF(fmt.Sprintf("%dx%d", cfg.p, cfg.th), info.Imbalance(),
			stepTime("BT-MZ", npb.ClassC, cfg.p, cfg.th, pinning.Dplace))
	}
	t.Note("Fewer processes balance the uneven zones better but pay the limited intra-zone OpenMP scaling (Fig. 9).")
	fmt.Println(t)

	// Pinning ablation (Fig. 7).
	t2 := report.New("SP-MZ class C on 128 CPUs: pinning effect",
		"procs x threads", "pinned (s)", "unpinned (s)", "slowdown")
	for _, cfg := range []struct{ p, th int }{{128, 1}, {32, 4}, {8, 16}} {
		a := stepTime("SP-MZ", npb.ClassC, cfg.p, cfg.th, pinning.Dplace)
		b := stepTime("SP-MZ", npb.ClassC, cfg.p, cfg.th, pinning.None)
		t2.AddF(fmt.Sprintf("%dx%d", cfg.p, cfg.th), a, b, b/a)
	}
	fmt.Println(t2)
}
