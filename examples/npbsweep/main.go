// Npbsweep: hybrid programming-model exploration with the multi-zone NPBs —
// the process/thread trade-off of Fig. 9, the pinning effect of Fig. 7, and
// a real coupled multi-zone solve for validation.
package main

import (
	"flag"
	"fmt"

	"columbia/internal/machine"
	"columbia/internal/netmodel"
	"columbia/internal/npb"
	"columbia/internal/npbmz"
	"columbia/internal/par"
	"columbia/internal/pinning"
	"columbia/internal/report"
	"columbia/internal/sweep"
	"columbia/internal/vmpi"
)

// stepTime submits one hybrid configuration as a cached sweep point; every
// point of both tables below fans out across the pool before any is waited.
func stepTime(bench string, class npb.Class, procs, threads int, pin pinning.Method) sweep.Future[float64] {
	cl := machine.NewSingleNode(machine.AltixBX2b)
	cfg := vmpi.Config{Cluster: cl, Procs: procs, Threads: threads, Pin: pin}
	key := fmt.Sprintf("npbsweep/%s/%s/%s", bench, class, cfg.Fingerprint())
	return sweep.Cached(sweep.Default(), key, func() float64 {
		fn, info := npbmz.Skeleton(bench, class, procs)
		run := cfg
		run.Net = netmodel.New(cl)
		run.OMP = info.OMPOpts()
		res := vmpi.Run(run, fn)
		return res.Time / npbmz.SkeletonIters
	})
}

func main() {
	jobs := flag.Int("j", 0, "max concurrent sweep points (0 = GOMAXPROCS)")
	flag.Parse()
	sweep.SetWorkers(*jobs)
	fmt.Println("== Multi-zone NPB hybrid sweep (BX2b) ==")

	// Real coupled mini multi-zone run (validates the exchange logic).
	p := npbmz.Params{XZones: 3, YZones: 2, Niter: 2}
	serial := npbmz.RunMiniSerial(p, 8, 2, 1)
	var dist []float64
	par.Run(3, func(c par.Comm) {
		norms := npbmz.RunMiniMPI(c, p, 8, 2, 1)
		if c.Rank() == 0 {
			dist = norms
		}
	})
	fmt.Printf("real 6-zone coupled solve: serial zone-0 norm %.12f, distributed %.12f (equal: %v)\n\n",
		serial[0], dist[0], serial[0] == dist[0])

	// BT-MZ class C: same 256 CPUs, different process/thread splits.
	zones := npbmz.Classes[npb.ClassC].Zones()
	btCfgs := []struct{ p, th int }{{256, 1}, {128, 2}, {64, 4}, {32, 8}}
	btPts := map[int]sweep.Future[float64]{}
	for i, cfg := range btCfgs {
		if cfg.p > zones {
			continue
		}
		btPts[i] = stepTime("BT-MZ", npb.ClassC, cfg.p, cfg.th, pinning.Dplace)
	}
	// Pinning ablation (Fig. 7) — submitted before either table is assembled.
	spCfgs := []struct{ p, th int }{{128, 1}, {32, 4}, {8, 16}}
	type pinPair struct{ pinned, unpinned sweep.Future[float64] }
	spPts := make([]pinPair, len(spCfgs))
	for i, cfg := range spCfgs {
		spPts[i] = pinPair{
			pinned:   stepTime("SP-MZ", npb.ClassC, cfg.p, cfg.th, pinning.Dplace),
			unpinned: stepTime("SP-MZ", npb.ClassC, cfg.p, cfg.th, pinning.None),
		}
	}

	t := report.New("BT-MZ class C on 256 CPUs: process/thread splits",
		"procs x threads", "imbalance", "time/step (s)")
	for i, cfg := range btCfgs {
		f, ok := btPts[i]
		if !ok {
			continue
		}
		_, info := npbmz.Skeleton("BT-MZ", npb.ClassC, cfg.p)
		t.AddF(fmt.Sprintf("%dx%d", cfg.p, cfg.th), info.Imbalance(), f.Wait())
	}
	t.Note("Fewer processes balance the uneven zones better but pay the limited intra-zone OpenMP scaling (Fig. 9).")
	fmt.Println(t)

	t2 := report.New("SP-MZ class C on 128 CPUs: pinning effect",
		"procs x threads", "pinned (s)", "unpinned (s)", "slowdown")
	for i, cfg := range spCfgs {
		a, b := spPts[i].pinned.Wait(), spPts[i].unpinned.Wait()
		t2.AddF(fmt.Sprintf("%dx%d", cfg.p, cfg.th), a, b, b/a)
	}
	fmt.Println(t2)
}
