#!/bin/sh
# Tier-1 verification: formatting, vet, build, tests, and the race detector.
# Run from anywhere; the script cds to the repo root.
set -eu
cd "$(dirname "$0")"

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet =="
go vet ./...

# Static analysis suite: the determinism analyzers (fingerprint coverage,
# wall-clock/map-order hazards, stop-token discipline, exact float
# comparisons, collsplit, tagpair — DESIGN.md §6-§7), the
# performance/concurrency analyzers (hotalloc escape budgets, lockorder,
# wirecover — DESIGN.md §11) and the CFG-based scalability analyzers
# (rankscale O(ranks) budgets, chanlive path-sensitive stop-token
# liveness, wiredrift gob-shape freezing — DESIGN.md §12) in one vettool.
# All three suites are blocking here.
echo "== detlint + perflint + scalelint analyzers =="
go build -o bin/detlint ./cmd/detlint
go vet -vettool=bin/detlint ./...

# Committed-artifact gates: the hotalloc escape budget (static counts and
# the compiler's own -gcflags=-m diagnostics), the rankscale site budget,
# and the wire schema vs dist.ProtocolVersion. Blocking — a new escape, an
# unbudgeted O(ranks) site or a drifted wire shape fails verification
# before the build/test steps run.
echo "== perflint artifact gates (escape budget, rank budget, wire schema) =="
go run ./cmd/perflint

# Per-analyzer wall time and diagnostic counts, in-process over every
# package. Informational: the vet run above is the blocking gate.
echo "== analyzer stats =="
go run ./cmd/perflint -stats

echo "== go build =="
go build ./...

echo "== go test =="
go test -timeout 15m ./...

# The fault-injection and crash-recovery tests (TestFault* across vmpi,
# sweep, fault, core and the CLI) exercise goroutine shutdown, retries and
# cancellation; run them repeatedly to shake out nondeterministic flakes
# before they reach the golden suites.
echo "== go test -run Fault -count=5 (flake gate) =="
go test -timeout 10m -run Fault -count=5 \
	./internal/fault/ ./internal/vmpi/ ./internal/sweep/ ./internal/report/ ./internal/core/ ./cmd/columbia/

# Seeded-noise determinism: the noise tests (stream discipline in vmpi,
# ensemble cache isolation/collapse, parallel replay byte-identity, seed
# sensitivity, golden distribution cells) are the replay contract for
# stochastic runs; repeat them to shake out schedule-dependent draws.
echo "== go test -run Noise -count=5 (noise flake gate) =="
go test -timeout 10m -run Noise -count=5 \
	./internal/noise/ ./internal/vmpi/ ./internal/core/ ./cmd/columbia/

# Communication sanitizer: one representative core experiment per
# simulating app family (HPCC/b_eff stride, NPB OpenMP fig8, multi-zone
# fig7, MD table5) runs under -commsan. A violation — a message race, an
# unmatched send, a collective mismatch — fails the run with exit 1; a
# clean pass also re-checks (in-process, per experiment) that sanitized
# output is byte-identical to unsanitized via the core test suite above.
echo "== commsan (representative experiments) =="
go run ./cmd/columbia -commsan run stride fig8 fig7 table5 > /dev/null

# Crash-tolerance smoke: a small sweep on 2 supervised worker processes
# under a kill-after-every-point chaos schedule must emit bytes identical
# to the serial run — crashes are restarted and re-dispatched, never
# visible in stdout. See DESIGN.md §10 and `make chaos`.
echo "== worker chaos smoke (byte-identity under crashes) =="
mkdir -p bin
go build -o bin/columbia ./cmd/columbia
bin/columbia -faults wkill=1 run stride table1 > bin/chaos_serial.out
bin/columbia -workers 2 -faults wkill=1 run stride table1 > bin/chaos_workers.out
cmp bin/chaos_serial.out bin/chaos_workers.out
rm -f bin/chaos_serial.out bin/chaos_workers.out

# Noise ensemble smoke: one paper table as a 5-replica seeded jitter
# ensemble, serial vs 2 worker processes — the distribution cells (min/
# avg/max ±spread) must be byte-identical across process boundaries, and
# the output must actually contain them.
echo "== noise ensemble smoke (5 replicas, serial vs workers) =="
bin/columbia -noise jitter=exp:0.05,seed=12 -replicas 5 run fig7 > bin/noise_serial.out
bin/columbia -workers 2 -noise jitter=exp:0.05,seed=12 -replicas 5 run fig7 > bin/noise_workers.out
cmp bin/noise_serial.out bin/noise_workers.out
grep -q '±' bin/noise_serial.out
rm -f bin/noise_serial.out bin/noise_workers.out

# -short skips the 2048-rank experiments: their race-instrumented goroutine
# churn takes tens of minutes on small hosts while exercising the exact same
# engine and scheduler code paths as the light experiments, which the
# determinism tests still replay on 8 workers here.
echo "== go test -race -short =="
go test -timeout 20m -race -short ./...

# Benchmark regression report: the fast engine benchmarks vs the latest
# committed BENCH_<date>.json. Non-blocking here — benchmark noise on
# shared hosts must not fail tier-1 verification; `make bench` is the
# blocking gate (and runs the sweep benchmarks too).
echo "== benchgate (non-blocking report) =="
go run ./cmd/benchgate -bench 'Engine' ||
	echo "benchgate: regression reported above (non-blocking in verify)"

# Sweep scaling report: one pass of the -j 1/2/4/8 curve so the speedup
# shape is visible in every verify run. Single iterations only — the
# blocking best-of-N scaling gate is `make bench` / `make bench-scaling`
# (see DESIGN.md §9).
echo "== sweep scaling curve (non-blocking report) =="
go run ./cmd/benchgate -bench 'Sweep(Serial|J2|J4|Parallel)$' -benchtime 1x -count 1 ||
	echo "benchgate: scaling issue reported above (non-blocking in verify)"

echo "verify: all checks passed"
