GO ?= go

.PHONY: build test race bench bench-all bench-baseline bench-scaling verify golden lint analyze chaos noise

build:
	$(GO) build ./...

# Static analysis gate (see internal/analysis/{detlint,perflint,scalelint}):
# builds the combined vettool — determinism suite, performance/concurrency
# suite (hotalloc, lockorder, wirecover) and scalability suite (rankscale,
# chanlive, wiredrift) — and runs it over every package.
lint:
	$(GO) build -o bin/detlint ./cmd/detlint
	$(GO) vet -vettool=bin/detlint ./...

# Same suite in machine-readable form (-json per-package findings), plus
# the committed-artifact gates (hotalloc escape budget incl. the compiler's
# -gcflags=-m view, rankscale site budget, wire schema) and the in-process
# per-analyzer stats report. See DESIGN.md §11–§12.
analyze:
	$(GO) build -o bin/detlint ./cmd/detlint
	$(GO) vet -vettool=bin/detlint -json ./...
	$(GO) run ./cmd/perflint
	$(GO) run ./cmd/perflint -stats

test:
	$(GO) test ./...

# -short skips the 2048-rank experiments, which take tens of race-instrumented
# minutes on small hosts (see verify.sh).
race:
	$(GO) test -race -short ./...

# Benchmark regression gate: runs the engine and sweep benchmarks and
# fails if any is >15% slower (ns/op) than the latest committed
# BENCH_<date>.json baseline. See cmd/benchgate and DESIGN.md §8.
bench:
	$(GO) run ./cmd/benchgate

# Refresh the committed baseline after an intentional performance change
# (writes BENCH_<today>.json; commit it alongside the change).
bench-baseline:
	$(GO) run ./cmd/benchgate -write

# Just the sweep worker-scaling curve (-j 1/2/4/8): prints speedups and
# gates on parallel-beats-serial. See DESIGN.md §9.
bench-scaling:
	$(GO) run ./cmd/benchgate -bench 'Sweep(Serial|J2|J4|Parallel)$$'

# Every benchmark in the repo, ungated.
bench-all:
	$(GO) test -bench=. -benchmem ./...

# Crash-tolerance smoke: a small sweep on 2 supervised worker processes
# under a kill-after-every-point chaos schedule, byte-compared against the
# serial run. See DESIGN.md §10.
chaos:
	$(GO) build -o bin/columbia ./cmd/columbia
	bin/columbia -faults wkill=1 run stride table1 > bin/chaos_serial.out
	bin/columbia -workers 2 -faults wkill=1 run stride table1 > bin/chaos_workers.out
	cmp bin/chaos_serial.out bin/chaos_workers.out
	rm -f bin/chaos_serial.out bin/chaos_workers.out
	@echo "chaos: byte-identical under worker crashes"

# Noise ensemble smoke: a paper figure as a 5-replica seeded jitter
# ensemble, serial vs 2 worker processes, byte-compared — the replica
# draws are a pure function of (spec, seed, replica), never of
# scheduling. See DESIGN.md §13.
noise:
	$(GO) build -o bin/columbia ./cmd/columbia
	bin/columbia -noise jitter=exp:0.05,seed=12 -replicas 5 run fig7 > bin/noise_serial.out
	bin/columbia -workers 2 -noise jitter=exp:0.05,seed=12 -replicas 5 run fig7 > bin/noise_workers.out
	cmp bin/noise_serial.out bin/noise_workers.out
	grep -q '±' bin/noise_serial.out
	rm -f bin/noise_serial.out bin/noise_workers.out
	@echo "noise: ensemble byte-identical across worker processes"

# Full tier-1 gate: gofmt, vet, build, tests, race detector.
verify:
	./verify.sh

# Regenerate the golden experiment outputs after an intentional model change.
golden:
	$(GO) test ./internal/core -run TestGoldenOutputs -update
