GO ?= go

.PHONY: build test race bench verify golden lint

build:
	$(GO) build ./...

# Determinism lint suite (see internal/analysis/detlint): builds the
# detlint vettool and runs it over every package via go vet.
lint:
	$(GO) build -o bin/detlint ./cmd/detlint
	$(GO) vet -vettool=bin/detlint ./...

test:
	$(GO) test ./...

# -short skips the 2048-rank experiments, which take tens of race-instrumented
# minutes on small hosts (see verify.sh).
race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Full tier-1 gate: gofmt, vet, build, tests, race detector.
verify:
	./verify.sh

# Regenerate the golden experiment outputs after an intentional model change.
golden:
	$(GO) test ./internal/core -run TestGoldenOutputs -update
