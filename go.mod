// Deliberately dependency-free. The determinism lint suite under
// internal/analysis mirrors the golang.org/x/tools go/analysis API, but
// this build environment is offline, so instead of pinning x/tools here
// the needed subset (analyzer API, checker, analysistest, unitchecker) is
// reimplemented on the standard library; the mirrored surface keeps a
// later migration to the real module mechanical. See DESIGN.md §6.
module columbia

go 1.22
