module columbia

go 1.22
