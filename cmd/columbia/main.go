// Command columbia regenerates the tables and figures of "An
// Application-Based Performance Characterization of the Columbia
// Supercluster" (SC 2005) on the simulated machine.
//
// Usage:
//
//	columbia list             list experiment IDs
//	columbia run <id>...      run selected experiments (e.g. fig5 table2)
//	columbia all              run everything in paper order
//	columbia -csv run <id>    emit CSV instead of aligned tables
//	columbia -plot run <id>   append ASCII plots to figure tables
//	columbia -j 8 all         run sweep points on 8 affinity lanes
//
// Robustness flags (see DESIGN.md, "Fault injection"):
//
//	columbia -faults nodedown=0 run stride     simulate with node 0 lost
//	columbia -timeout 30s all                  bound each sweep point's wall clock
//	columbia -max-retries 2 -faults ... all    retry retryable failures
//	columbia -commsan run fig8                 run under the communication sanitizer
//	columbia -engine goroutine run fig5        select the vmpi execution engine
//
// A failed point degrades to an annotated "!kind" cell instead of aborting
// the run; if any point failed, the command prints a summary to stderr and
// exits 1. Output is byte-identical for every -j value: experiments render
// concurrently, but the CLI prints them in submission order.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"columbia/internal/core"
	"columbia/internal/fault"
	"columbia/internal/report"
	"columbia/internal/sweep"
	"columbia/internal/vmpi"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// rendered is one experiment's output plus its degraded-cell count.
type rendered struct {
	text     string
	failures int
}

// run is the testable entry point: it parses argv, configures the sweep
// pool and fault plan, executes the requested experiments and returns the
// process exit code (0 healthy, 1 on any failed point or bad ID, 2 usage).
func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("columbia", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		csvOut     = fs.Bool("csv", false, "emit CSV")
		plotOut    = fs.Bool("plot", false, "append ASCII plots")
		jobs       = fs.Int("j", 0, "sweep affinity lanes (0 = GOMAXPROCS); concurrent points are additionally clamped to GOMAXPROCS")
		timeout    = fs.Duration("timeout", 0, "wall-clock budget per sweep point (0 = none)")
		maxRetries = fs.Int("max-retries", 0, "retries for retryable point failures (timeouts, transient faults)")
		faultSpec  = fs.String("faults", "", "comma-separated fault plan, e.g. nodedown=0,slownode=1:1.5 (see DESIGN.md)")
		commsan    = fs.Bool("commsan", false, "run every simulation under the communication sanitizer (races, unmatched traffic, collective mismatches fail as !sanitizer cells)")
		engineSel  = fs.String("engine", "", "vmpi execution engine: calendar (default) or goroutine (the legacy central-loop scheduler; byte-identical output, see DESIGN.md §8)")
	)
	usage := func() int {
		fmt.Fprintln(stderr, "usage: columbia [-csv] [-plot] [-j N] [-timeout D] [-max-retries N] [-faults SPEC] [-commsan] [-engine NAME] {list | all | run <id>...}")
		return 2
	}
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	sweep.Configure(context.Background(), sweep.Options{
		Workers:    *jobs,
		Timeout:    *timeout,
		MaxRetries: *maxRetries,
	})
	if *faultSpec != "" {
		plan, err := fault.Parse(*faultSpec)
		if err != nil {
			fmt.Fprintln(stderr, "columbia:", err)
			return 2
		}
		core.SetFaultPlan(plan)
		defer core.SetFaultPlan(nil)
	}
	if *commsan {
		core.SetSanitize(true)
		defer core.SetSanitize(false)
	}
	if *engineSel != "" {
		switch e := vmpi.Engine(*engineSel); e {
		case vmpi.EngineCalendar, vmpi.EngineGoroutine:
			core.SetEngine(e)
			defer core.SetEngine("")
		default:
			fmt.Fprintf(stderr, "columbia: unknown engine %q (valid: %s, %s)\n",
				*engineSel, vmpi.EngineCalendar, vmpi.EngineGoroutine)
			return 2
		}
	}
	emit := func(b *strings.Builder, t *report.Table) {
		if *csvOut {
			b.WriteString(t.CSV())
			return
		}
		b.WriteString(t.String())
		b.WriteByte('\n')
		if *plotOut {
			b.WriteString(t.Plot(10))
			b.WriteByte('\n')
		}
	}
	// renderAsync runs an experiment on a coordinator goroutine and returns
	// its full rendered output. Concurrency lives in the sweep points the
	// experiment submits; rendering to a string keeps stdout in paper order.
	renderAsync := func(e core.Experiment) sweep.Future[rendered] {
		return sweep.Go(sweep.Default(), func() rendered {
			var b strings.Builder
			fmt.Fprintf(&b, "== %s: %s ==\n", e.ID, e.Title)
			fmt.Fprintf(&b, "paper: %s\n\n", e.Paper)
			var failures int
			for _, t := range e.Run() {
				emit(&b, t)
				failures += t.Failures
			}
			return rendered{text: b.String(), failures: failures}
		})
	}
	failures := 0
	flush := func(futs []sweep.Future[rendered]) {
		for _, f := range futs {
			r := f.Wait()
			fmt.Fprint(stdout, r.text)
			failures += r.failures
		}
	}
	finish := func() int {
		if failures > 0 {
			fmt.Fprintf(stderr, "columbia: %d point(s) failed; see FAILED notes above\n", failures)
			return 1
		}
		return 0
	}
	args := fs.Args()
	if len(args) == 0 {
		return usage()
	}
	switch args[0] {
	case "list":
		for _, e := range core.Experiments() {
			fmt.Fprintf(stdout, "%-8s %s\n", e.ID, e.Title)
		}
		return 0
	case "all":
		var futs []sweep.Future[rendered]
		for _, e := range core.Experiments() {
			futs = append(futs, renderAsync(e))
		}
		flush(futs)
		return finish()
	case "run":
		if len(args) < 2 {
			return usage()
		}
		// Lookups stay lazy so a bad ID after valid ones still prints the
		// earlier experiments first, exactly as a sequential loop would.
		var futs []sweep.Future[rendered]
		for _, id := range args[1:] {
			e, err := core.Lookup(id)
			if err != nil {
				flush(futs)
				fmt.Fprintln(stderr, err)
				return 1
			}
			futs = append(futs, renderAsync(e))
		}
		flush(futs)
		return finish()
	default:
		return usage()
	}
}
