// Command columbia regenerates the tables and figures of "An
// Application-Based Performance Characterization of the Columbia
// Supercluster" (SC 2005) on the simulated machine.
//
// Usage:
//
//	columbia list             list experiment IDs
//	columbia run <id>...      run selected experiments (e.g. fig5 table2)
//	columbia all              run everything in paper order
//	columbia -csv run <id>    emit CSV instead of aligned tables
//	columbia -plot run <id>   append ASCII plots to figure tables
package main

import (
	"flag"
	"fmt"
	"os"

	"columbia/internal/core"
	"columbia/internal/report"
)

var (
	csvOut  = flag.Bool("csv", false, "emit CSV")
	plotOut = flag.Bool("plot", false, "append ASCII plots")
)

func main() {
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	switch args[0] {
	case "list":
		for _, e := range core.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
	case "all":
		for _, e := range core.Experiments() {
			runOne(e)
		}
	case "run":
		if len(args) < 2 {
			usage()
		}
		for _, id := range args[1:] {
			e, err := core.Lookup(id)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			runOne(e)
		}
	default:
		usage()
	}
}

func runOne(e core.Experiment) {
	fmt.Printf("== %s: %s ==\n", e.ID, e.Title)
	fmt.Printf("paper: %s\n\n", e.Paper)
	for _, t := range e.Run() {
		emit(t)
	}
}

func emit(t *report.Table) {
	if *csvOut {
		fmt.Print(t.CSV())
		return
	}
	fmt.Println(t.String())
	if *plotOut {
		fmt.Println(t.Plot(10))
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: columbia [-csv] [-plot] {list | all | run <id>...}")
	os.Exit(2)
}
