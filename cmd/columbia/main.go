// Command columbia regenerates the tables and figures of "An
// Application-Based Performance Characterization of the Columbia
// Supercluster" (SC 2005) on the simulated machine.
//
// Usage:
//
//	columbia list             list experiment IDs
//	columbia run <id>...      run selected experiments (e.g. fig5 table2)
//	columbia all              run everything in paper order
//	columbia -csv run <id>    emit CSV instead of aligned tables
//	columbia -plot run <id>   append ASCII plots to figure tables
//	columbia -j 8 all         run sweep points on up to 8 workers
//
// Output is byte-identical for every -j value: experiments render
// concurrently, but the CLI prints them in submission order.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"columbia/internal/core"
	"columbia/internal/report"
	"columbia/internal/sweep"
)

var (
	csvOut  = flag.Bool("csv", false, "emit CSV")
	plotOut = flag.Bool("plot", false, "append ASCII plots")
	jobs    = flag.Int("j", 0, "max concurrent sweep points (0 = GOMAXPROCS)")
)

func main() {
	flag.Parse()
	sweep.SetWorkers(*jobs)
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	switch args[0] {
	case "list":
		for _, e := range core.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
	case "all":
		var futs []*sweep.Future[string]
		for _, e := range core.Experiments() {
			futs = append(futs, renderAsync(e))
		}
		for _, f := range futs {
			fmt.Print(f.Wait())
		}
	case "run":
		if len(args) < 2 {
			usage()
		}
		// Lookups stay lazy so a bad ID after valid ones still prints the
		// earlier experiments first, exactly as a sequential loop would.
		var futs []*sweep.Future[string]
		flush := func() {
			for _, f := range futs {
				fmt.Print(f.Wait())
			}
			futs = nil
		}
		for _, id := range args[1:] {
			e, err := core.Lookup(id)
			if err != nil {
				flush()
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			futs = append(futs, renderAsync(e))
		}
		flush()
	default:
		usage()
	}
}

// renderAsync runs an experiment on a coordinator goroutine and returns its
// full rendered output. Concurrency lives in the sweep points the experiment
// submits; rendering to a string keeps stdout in paper order.
func renderAsync(e core.Experiment) *sweep.Future[string] {
	return sweep.Go(sweep.Default(), func() string {
		var b strings.Builder
		fmt.Fprintf(&b, "== %s: %s ==\n", e.ID, e.Title)
		fmt.Fprintf(&b, "paper: %s\n\n", e.Paper)
		for _, t := range e.Run() {
			emit(&b, t)
		}
		return b.String()
	})
}

func emit(b *strings.Builder, t *report.Table) {
	if *csvOut {
		b.WriteString(t.CSV())
		return
	}
	b.WriteString(t.String())
	b.WriteByte('\n')
	if *plotOut {
		b.WriteString(t.Plot(10))
		b.WriteByte('\n')
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: columbia [-csv] [-plot] [-j N] {list | all | run <id>...}")
	os.Exit(2)
}
