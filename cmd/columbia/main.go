// Command columbia regenerates the tables and figures of "An
// Application-Based Performance Characterization of the Columbia
// Supercluster" (SC 2005) on the simulated machine.
//
// Usage:
//
//	columbia list             list experiment IDs
//	columbia run <id>...      run selected experiments (e.g. fig5 table2)
//	columbia all              run everything in paper order
//	columbia -csv run <id>    emit CSV instead of aligned tables
//	columbia -plot run <id>   append ASCII plots to figure tables
//	columbia -j 8 all         run sweep points on 8 affinity lanes
//	columbia -workers 4 all   run sweep points on 4 supervised worker processes
//
// Robustness flags (see DESIGN.md, "Fault injection" and "Worker protocol
// and failure model"):
//
//	columbia -faults nodedown=0 run stride     simulate with node 0 lost
//	columbia -timeout 30s all                  bound each sweep point's wall clock
//	columbia -max-retries 2 -faults ... all    retry retryable failures
//	columbia -commsan run fig8                 run under the communication sanitizer
//	columbia -engine goroutine run fig5        select the vmpi execution engine
//	columbia -workers 2 -faults wkill=3 all    chaos: each worker dies after 3 points
//
// Performance-noise ensembles (see DESIGN.md, "Performance noise and
// replica ensembles"):
//
//	columbia -noise jitter=exp:0.05 run fig7            seeded stochastic compute jitter
//	columbia -noise daemon=0.01:0.2:3:2 run fig7        periodic daemon interference on CPUs 0-1
//	columbia -noise jitter=uniform:0.1,seed=7 -replicas 5 run fig7
//	                                                    5-replica ensemble; cells become min/avg/max ±spread
//
// A failed point degrades to an annotated "!kind" cell instead of aborting
// the run; if any point failed, the command prints a summary to stderr and
// exits 1. Output is byte-identical for every -j and -workers value:
// experiments render concurrently, but the CLI prints them in submission
// order, and worker crashes are retried transparently (a point that kills
// several workers in a row is quarantined as a "!workercrash" cell).
// SIGINT/SIGTERM cancel the run: in-flight points degrade to "!canceled"
// cells, workers are drained, and the command exits 1 with a partial-output
// notice.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"columbia/internal/core"
	"columbia/internal/dist"
	"columbia/internal/fault"
	"columbia/internal/noise"
	"columbia/internal/report"
	"columbia/internal/sweep"
	"columbia/internal/vmpi"
)

func main() {
	if os.Getenv("COLUMBIA_WORKER") == "1" {
		os.Exit(workerMain())
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	code := run(ctx, os.Args[1:], os.Stdout, os.Stderr)
	stop()
	os.Exit(code)
}

// workerHeartbeat is the liveness interval workers announce in the
// handshake; the supervisor kills a worker silent for 4x this long.
const workerHeartbeat = time.Second

// workerMain is the worker-process entry: serve sweep points over
// stdin/stdout until shutdown. A chaos-scheduled death exits silently —
// from the outside it must look exactly like a real crash.
func workerMain() int {
	err := dist.ServeWorker(os.Stdin, os.Stdout, workerSetup)
	switch {
	case err == nil:
		return 0
	case errors.Is(err, dist.ErrChaosKill):
		return 3
	default:
		fmt.Fprintln(os.Stderr, "columbia worker:", err)
		return 1
	}
}

// workerSetup applies the handshake's run configuration to this process's
// globals — the same setters the supervisor-side CLI flags use — so the
// worker stamps identical fingerprints into identical cache keys.
func workerSetup(h dist.Hello) (dist.Executor, error) {
	if h.Faults != "" {
		plan, err := fault.Parse(h.Faults)
		if err != nil {
			return nil, err
		}
		core.SetFaultPlan(plan)
	}
	core.SetSanitize(h.Commsan)
	if h.Engine != "" {
		core.SetEngine(vmpi.Engine(h.Engine))
	}
	if h.Noise != "" {
		spec, err := noise.Parse(h.Noise)
		if err != nil {
			return nil, err
		}
		core.SetNoise(spec)
	}
	return core.ExecutePoint, nil
}

// workerProc adapts an os/exec worker to dist.Proc: Write feeds its stdin,
// Read drains its stdout, Kill terminates and reaps it.
type workerProc struct {
	cmd    *exec.Cmd
	stdin  io.WriteCloser
	stdout io.ReadCloser
}

func (p *workerProc) Read(b []byte) (int, error)  { return p.stdout.Read(b) }
func (p *workerProc) Write(b []byte) (int, error) { return p.stdin.Write(b) }

func (p *workerProc) Kill() error {
	p.stdin.Close()
	_ = p.cmd.Process.Kill()
	err := p.cmd.Wait()
	p.stdout.Close()
	return err
}

// spawnWorker re-executes this binary in worker mode. The COLUMBIA_WORKER
// variable, not a flag, selects the mode so the test binary can intercept
// it in TestMain before the test framework parses anything.
func spawnWorker(exe string, stderr io.Writer) (dist.Proc, error) {
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), "COLUMBIA_WORKER=1")
	cmd.Stderr = stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		stdin.Close()
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		stdin.Close()
		stdout.Close()
		return nil, err
	}
	return &workerProc{cmd: cmd, stdin: stdin, stdout: stdout}, nil
}

// rendered is one experiment's output plus its degraded-cell accounting.
type rendered struct {
	text     string
	failures int
	kinds    map[string]int
}

// run is the testable entry point: it parses argv, configures the sweep
// pool, fault plan and (optionally) the worker fleet, executes the
// requested experiments and returns the process exit code (0 healthy, 1 on
// any failed point, bad ID or interruption, 2 usage). Canceling ctx —
// main wires SIGINT/SIGTERM to it — drains the run: started points fail as
// "!canceled" cells, workers shut down, partial output is flushed.
func run(ctx context.Context, argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("columbia", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		csvOut     = fs.Bool("csv", false, "emit CSV")
		plotOut    = fs.Bool("plot", false, "append ASCII plots")
		jobs       = fs.Int("j", 0, "sweep affinity lanes (0 = GOMAXPROCS); concurrent points are additionally clamped to GOMAXPROCS")
		workers    = fs.Int("workers", 0, "supervised worker processes for sweep points (0 = in-process); crashes are retried, crash-looping points degrade to !workercrash cells")
		workerMode = fs.Bool("worker", false, "serve sweep points over stdin/stdout (internal; supervisors normally spawn workers via COLUMBIA_WORKER=1)")
		timeout    = fs.Duration("timeout", 0, "wall-clock budget per sweep point (0 = none)")
		maxRetries = fs.Int("max-retries", 0, "retries for retryable point failures (timeouts, transient faults, worker crashes)")
		faultSpec  = fs.String("faults", "", "comma-separated fault plan, e.g. nodedown=0,slownode=1:1.5,wkill=2 (see DESIGN.md)")
		commsan    = fs.Bool("commsan", false, "run every simulation under the communication sanitizer (races, unmatched traffic, collective mismatches fail as !sanitizer cells)")
		engineSel  = fs.String("engine", "", "vmpi execution engine: calendar (default) or goroutine (the legacy central-loop scheduler; byte-identical output, see DESIGN.md §8)")
		noiseSpec  = fs.String("noise", "", "comma-separated performance-noise spec, e.g. jitter=exp:0.05,daemon=0.01:0.2:3:2,seed=7 (see DESIGN.md §13)")
		replicaCnt = fs.Int("replicas", 1, "noise-ensemble size: run every sweep point N times with distinct replica indices and report min/avg/max cells (needs -noise to draw distinct samples)")
	)
	usage := func() int {
		fmt.Fprintln(stderr, "usage: columbia [-csv] [-plot] [-j N] [-workers N] [-timeout D] [-max-retries N] [-faults SPEC] [-noise SPEC] [-replicas N] [-commsan] [-engine NAME] {list | all | run <id>...}")
		return 2
	}
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if *workerMode {
		return workerMain()
	}
	sweep.Configure(ctx, sweep.Options{
		Workers:    *jobs,
		Timeout:    *timeout,
		MaxRetries: *maxRetries,
	})
	faultsFP := ""
	if *faultSpec != "" {
		plan, err := fault.Parse(*faultSpec)
		if err != nil {
			fmt.Fprintln(stderr, "columbia:", err)
			return 2
		}
		core.SetFaultPlan(plan)
		defer core.SetFaultPlan(nil)
		faultsFP = plan.Fingerprint()
	}
	if *commsan {
		core.SetSanitize(true)
		defer core.SetSanitize(false)
	}
	if *engineSel != "" {
		switch e := vmpi.Engine(*engineSel); e {
		case vmpi.EngineCalendar, vmpi.EngineGoroutine:
			core.SetEngine(e)
			defer core.SetEngine("")
		default:
			fmt.Fprintf(stderr, "columbia: unknown engine %q (valid: %s, %s)\n",
				*engineSel, vmpi.EngineCalendar, vmpi.EngineGoroutine)
			return 2
		}
	}
	noiseFP := ""
	if *noiseSpec != "" {
		spec, err := noise.Parse(*noiseSpec)
		if err != nil {
			fmt.Fprintln(stderr, "columbia:", err)
			return 2
		}
		core.SetNoise(spec)
		defer core.SetNoise(nil)
		noiseFP = spec.Fingerprint()
	}
	if *replicaCnt < 1 {
		fmt.Fprintln(stderr, "columbia: -replicas must be at least 1")
		return 2
	}
	if *replicaCnt > 1 {
		core.SetReplicas(*replicaCnt)
		defer core.SetReplicas(0)
	}
	var fleet *dist.Supervisor
	if *workers > 0 {
		exe, err := os.Executable()
		if err != nil {
			fmt.Fprintln(stderr, "columbia:", err)
			return 2
		}
		fleet, err = dist.New(dist.Config{
			Workers: *workers,
			Spawn:   func() (dist.Proc, error) { return spawnWorker(exe, stderr) },
			Hello: dist.Hello{
				Faults:    faultsFP,
				Commsan:   *commsan,
				Noise:     noiseFP,
				Engine:    *engineSel,
				Timeout:   *timeout,
				Heartbeat: workerHeartbeat,
			},
		})
		if err != nil {
			fmt.Fprintln(stderr, "columbia:", err)
			return 2
		}
		core.SetDispatcher(fleet)
		defer func() {
			core.SetDispatcher(nil)
			fleet.Close()
		}()
	}
	emit := func(b *strings.Builder, t *report.Table) {
		if *csvOut {
			b.WriteString(t.CSV())
			return
		}
		b.WriteString(t.String())
		b.WriteByte('\n')
		if *plotOut {
			b.WriteString(t.Plot(10))
			b.WriteByte('\n')
		}
	}
	// renderAsync runs an experiment on a coordinator goroutine and returns
	// its full rendered output. Concurrency lives in the sweep points the
	// experiment submits; rendering to a string keeps stdout in paper order.
	renderAsync := func(e core.Experiment) sweep.Future[rendered] {
		return sweep.Go(sweep.Default(), func() rendered {
			var b strings.Builder
			fmt.Fprintf(&b, "== %s: %s ==\n", e.ID, e.Title)
			fmt.Fprintf(&b, "paper: %s\n\n", e.Paper)
			r := rendered{}
			for _, t := range e.Run() {
				emit(&b, t)
				r.failures += t.Failures
				for k, n := range t.FailKinds {
					if r.kinds == nil {
						r.kinds = make(map[string]int)
					}
					r.kinds[k] += n
				}
			}
			r.text = b.String()
			return r
		})
	}
	failures := 0
	failKinds := map[string]int{}
	flush := func(futs []sweep.Future[rendered]) {
		for _, f := range futs {
			r := f.Wait()
			fmt.Fprint(stdout, r.text)
			failures += r.failures
			for k, n := range r.kinds {
				failKinds[k] += n
			}
		}
	}
	// finish prints the end-of-run failure summary: degraded-cell counts by
	// kind, point retries, and worker-fleet crash handling. Healthy quiet
	// runs print nothing and exit 0.
	finish := func() int {
		interrupted := ctx.Err() != nil
		if failures > 0 {
			fmt.Fprintf(stderr, "columbia: %d point(s) failed; see FAILED notes above\n", failures)
			kinds := make([]string, 0, len(failKinds))
			for k := range failKinds {
				kinds = append(kinds, k)
			}
			sort.Strings(kinds)
			parts := make([]string, len(kinds))
			for i, k := range kinds {
				parts[i] = fmt.Sprintf("%s=%d", k, failKinds[k])
			}
			fmt.Fprintf(stderr, "columbia:   failures by kind: %s\n", strings.Join(parts, " "))
		}
		if r := sweep.Default().Stats().Retries; r > 0 {
			fmt.Fprintf(stderr, "columbia:   point retries: %d\n", r)
		}
		if fleet != nil {
			if st := fleet.Stats(); st.Crashes > 0 || st.Restarts > 0 || st.Quarantined > 0 {
				fmt.Fprintf(stderr, "columbia:   worker fleet: %d crash(es), %d restart(s), %d point(s) quarantined\n",
					st.Crashes, st.Restarts, st.Quarantined)
			}
		}
		if interrupted {
			fmt.Fprintln(stderr, "columbia: interrupted; output above contains partial results")
		}
		if failures > 0 || interrupted {
			return 1
		}
		return 0
	}
	args := fs.Args()
	if len(args) == 0 {
		return usage()
	}
	switch args[0] {
	case "list":
		for _, e := range core.Experiments() {
			fmt.Fprintf(stdout, "%-8s %s\n", e.ID, e.Title)
		}
		return 0
	case "all":
		var futs []sweep.Future[rendered]
		for _, e := range core.Experiments() {
			futs = append(futs, renderAsync(e))
		}
		flush(futs)
		return finish()
	case "run":
		if len(args) < 2 {
			return usage()
		}
		// Lookups stay lazy so a bad ID after valid ones still prints the
		// earlier experiments first, exactly as a sequential loop would.
		var futs []sweep.Future[rendered]
		for _, id := range args[1:] {
			e, err := core.Lookup(id)
			if err != nil {
				flush(futs)
				fmt.Fprintln(stderr, err)
				return 1
			}
			futs = append(futs, renderAsync(e))
		}
		flush(futs)
		return finish()
	default:
		return usage()
	}
}
