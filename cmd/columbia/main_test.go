package main

import (
	"strings"
	"testing"

	"columbia/internal/core"
	"columbia/internal/sweep"
)

// Runs mutate the process-global sweep pool and fault plan; restore the
// defaults so test order never matters.
func resetGlobals() { sweep.SetWorkers(0) }

func TestFaultedRunExitsNonzeroWithAnnotatedCells(t *testing.T) {
	defer resetGlobals()
	var out, errOut strings.Builder
	code := run([]string{"-faults", "nodedown=0", "run", "stride"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr: %s", code, errOut.String())
	}
	s := out.String()
	// Healthy analytic rows render alongside the degraded simulation row.
	if !strings.Contains(s, "DGEMM per-CPU") {
		t.Errorf("healthy rows missing:\n%s", s)
	}
	if !strings.Contains(s, "!node-down") {
		t.Errorf("degraded cells missing:\n%s", s)
	}
	if !strings.Contains(errOut.String(), "3 point(s) failed") {
		t.Errorf("stderr summary missing: %q", errOut.String())
	}
}

func TestHealthyRunExitsZero(t *testing.T) {
	defer resetGlobals()
	var out, errOut strings.Builder
	code := run([]string{"run", "table1", "stride"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstderr: %s", code, errOut.String())
	}
	for _, want := range []string{"== table1:", "== stride:", "Ping-Pong latency"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
	if errOut.Len() != 0 {
		t.Errorf("stderr not empty on a healthy run: %q", errOut.String())
	}
}

func TestBadFaultSpecIsUsageError(t *testing.T) {
	defer resetGlobals()
	var out, errOut strings.Builder
	if code := run([]string{"-faults", "bogus=1", "run", "stride"}, &out, &errOut); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "bogus") {
		t.Errorf("stderr should name the bad directive: %q", errOut.String())
	}
}

func TestBadExperimentIDExitsOne(t *testing.T) {
	defer resetGlobals()
	var out, errOut strings.Builder
	if code := run([]string{"run", "nope"}, &out, &errOut); code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "unknown experiment") {
		t.Errorf("stderr: %q", errOut.String())
	}
}

func TestCommsanRunMatchesPlain(t *testing.T) {
	defer resetGlobals()
	var plain, plainErr strings.Builder
	if code := run([]string{"run", "stride"}, &plain, &plainErr); code != 0 {
		t.Fatalf("plain run exit = %d\nstderr: %s", code, plainErr.String())
	}
	var san, sanErr strings.Builder
	if code := run([]string{"-commsan", "run", "stride"}, &san, &sanErr); code != 0 {
		t.Fatalf("-commsan run exit = %d\nstderr: %s", code, sanErr.String())
	}
	if plain.String() != san.String() {
		t.Errorf("-commsan perturbed the output\n--- plain ---\n%s\n--- commsan ---\n%s",
			plain.String(), san.String())
	}
	// The deferred reset must leave the toggle off for later runs.
	if core.Sanitize() {
		t.Error("-commsan leaked: sanitizer still on after run returned")
	}
}

func TestEngineFlagMatchesDefault(t *testing.T) {
	defer resetGlobals()
	var cal, calErr strings.Builder
	if code := run([]string{"run", "table2"}, &cal, &calErr); code != 0 {
		t.Fatalf("default run exit = %d\nstderr: %s", code, calErr.String())
	}
	var gor, gorErr strings.Builder
	if code := run([]string{"-engine", "goroutine", "run", "table2"}, &gor, &gorErr); code != 0 {
		t.Fatalf("-engine goroutine exit = %d\nstderr: %s", code, gorErr.String())
	}
	if cal.String() != gor.String() {
		t.Errorf("-engine goroutine perturbed the output\n--- calendar ---\n%s\n--- goroutine ---\n%s",
			cal.String(), gor.String())
	}
	// The deferred reset must leave the selector at the default.
	if core.EngineSelector() != "" {
		t.Errorf("-engine leaked: selector = %q after run returned", core.EngineSelector())
	}
}

func TestBadEngineIsUsageError(t *testing.T) {
	defer resetGlobals()
	var out, errOut strings.Builder
	if code := run([]string{"-engine", "bogus", "run", "table1"}, &out, &errOut); code != 2 {
		t.Fatalf("exit code = %d, want 2 (usage error)", code)
	}
	if !strings.Contains(errOut.String(), "unknown engine") {
		t.Errorf("stderr %q does not name the bad engine", errOut.String())
	}
}

func TestTimeoutFlagParses(t *testing.T) {
	defer resetGlobals()
	var out, errOut strings.Builder
	// A generous per-point budget must not perturb a healthy run.
	if code := run([]string{"-timeout", "5m", "-max-retries", "1", "run", "table1"}, &out, &errOut); code != 0 {
		t.Fatalf("exit code = %d, want 0\nstderr: %s", code, errOut.String())
	}
}
