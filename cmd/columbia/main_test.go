package main

import (
	"context"
	"os"
	"strings"
	"testing"

	"columbia/internal/core"
	"columbia/internal/sweep"
)

// TestMain lets the test binary double as the worker executable: the
// supervisor spawns os.Executable() with COLUMBIA_WORKER=1, which in tests
// is this binary, so the interception must happen before any test runs.
func TestMain(m *testing.M) {
	if os.Getenv("COLUMBIA_WORKER") == "1" {
		os.Exit(workerMain())
	}
	os.Exit(m.Run())
}

// Runs mutate the process-global sweep pool and fault plan; restore the
// defaults so test order never matters.
func resetGlobals() { sweep.SetWorkers(0) }

func TestFaultedRunExitsNonzeroWithAnnotatedCells(t *testing.T) {
	defer resetGlobals()
	var out, errOut strings.Builder
	code := run(context.Background(), []string{"-faults", "nodedown=0", "run", "stride"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr: %s", code, errOut.String())
	}
	s := out.String()
	// Healthy analytic rows render alongside the degraded simulation row.
	if !strings.Contains(s, "DGEMM per-CPU") {
		t.Errorf("healthy rows missing:\n%s", s)
	}
	if !strings.Contains(s, "!node-down") {
		t.Errorf("degraded cells missing:\n%s", s)
	}
	if !strings.Contains(errOut.String(), "3 point(s) failed") {
		t.Errorf("stderr summary missing: %q", errOut.String())
	}
}

func TestHealthyRunExitsZero(t *testing.T) {
	defer resetGlobals()
	var out, errOut strings.Builder
	code := run(context.Background(), []string{"run", "table1", "stride"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstderr: %s", code, errOut.String())
	}
	for _, want := range []string{"== table1:", "== stride:", "Ping-Pong latency"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
	if errOut.Len() != 0 {
		t.Errorf("stderr not empty on a healthy run: %q", errOut.String())
	}
}

func TestBadFaultSpecIsUsageError(t *testing.T) {
	defer resetGlobals()
	var out, errOut strings.Builder
	if code := run(context.Background(), []string{"-faults", "bogus=1", "run", "stride"}, &out, &errOut); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "bogus") {
		t.Errorf("stderr should name the bad directive: %q", errOut.String())
	}
}

func TestBadExperimentIDExitsOne(t *testing.T) {
	defer resetGlobals()
	var out, errOut strings.Builder
	if code := run(context.Background(), []string{"run", "nope"}, &out, &errOut); code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "unknown experiment") {
		t.Errorf("stderr: %q", errOut.String())
	}
}

func TestCommsanRunMatchesPlain(t *testing.T) {
	defer resetGlobals()
	var plain, plainErr strings.Builder
	if code := run(context.Background(), []string{"run", "stride"}, &plain, &plainErr); code != 0 {
		t.Fatalf("plain run exit = %d\nstderr: %s", code, plainErr.String())
	}
	var san, sanErr strings.Builder
	if code := run(context.Background(), []string{"-commsan", "run", "stride"}, &san, &sanErr); code != 0 {
		t.Fatalf("-commsan run exit = %d\nstderr: %s", code, sanErr.String())
	}
	if plain.String() != san.String() {
		t.Errorf("-commsan perturbed the output\n--- plain ---\n%s\n--- commsan ---\n%s",
			plain.String(), san.String())
	}
	// The deferred reset must leave the toggle off for later runs.
	if core.Sanitize() {
		t.Error("-commsan leaked: sanitizer still on after run returned")
	}
}

func TestEngineFlagMatchesDefault(t *testing.T) {
	defer resetGlobals()
	var cal, calErr strings.Builder
	if code := run(context.Background(), []string{"run", "table2"}, &cal, &calErr); code != 0 {
		t.Fatalf("default run exit = %d\nstderr: %s", code, calErr.String())
	}
	var gor, gorErr strings.Builder
	if code := run(context.Background(), []string{"-engine", "goroutine", "run", "table2"}, &gor, &gorErr); code != 0 {
		t.Fatalf("-engine goroutine exit = %d\nstderr: %s", code, gorErr.String())
	}
	if cal.String() != gor.String() {
		t.Errorf("-engine goroutine perturbed the output\n--- calendar ---\n%s\n--- goroutine ---\n%s",
			cal.String(), gor.String())
	}
	// The deferred reset must leave the selector at the default.
	if core.EngineSelector() != "" {
		t.Errorf("-engine leaked: selector = %q after run returned", core.EngineSelector())
	}
}

func TestBadEngineIsUsageError(t *testing.T) {
	defer resetGlobals()
	var out, errOut strings.Builder
	if code := run(context.Background(), []string{"-engine", "bogus", "run", "table1"}, &out, &errOut); code != 2 {
		t.Fatalf("exit code = %d, want 2 (usage error)", code)
	}
	if !strings.Contains(errOut.String(), "unknown engine") {
		t.Errorf("stderr %q does not name the bad engine", errOut.String())
	}
}

func TestTimeoutFlagParses(t *testing.T) {
	defer resetGlobals()
	var out, errOut strings.Builder
	// A generous per-point budget must not perturb a healthy run.
	if code := run(context.Background(), []string{"-timeout", "5m", "-max-retries", "1", "run", "table1"}, &out, &errOut); code != 0 {
		t.Fatalf("exit code = %d, want 0\nstderr: %s", code, errOut.String())
	}
}

// runCLI is a convenience wrapper returning code, stdout and stderr.
func runCLI(args ...string) (int, string, string) {
	var out, errOut strings.Builder
	code := run(context.Background(), args, &out, &errOut)
	return code, out.String(), errOut.String()
}

// TestWorkersByteIdentity: the supervised multi-process sweep produces the
// exact bytes of the serial run for every fleet size.
func TestWorkersByteIdentity(t *testing.T) {
	defer resetGlobals()
	args := []string{"run", "table1", "stride"}
	code, serial, _ := runCLI(args...)
	if code != 0 {
		t.Fatalf("serial exit = %d", code)
	}
	for _, w := range []string{"2", "4"} {
		resetGlobals()
		code, out, errOut := runCLI(append([]string{"-workers", w}, args...)...)
		if code != 0 {
			t.Fatalf("-workers %s exit = %d\nstderr: %s", w, code, errOut)
		}
		if out != serial {
			t.Errorf("-workers %s output differs from serial\n--- serial ---\n%s\n--- workers ---\n%s",
				w, serial, out)
		}
	}
}

// TestWorkersChaosByteIdentity: any crash schedule that leaves points
// completable yields byte-identical output — crashes are invisible in
// stdout, visible only in the stderr fleet summary.
func TestWorkersChaosByteIdentity(t *testing.T) {
	defer resetGlobals()
	for _, chaos := range []string{"wkill=1", "wkill=1,wtrunc=2", "wcorrupt=2"} {
		resetGlobals()
		code, serial, _ := runCLI("-faults", chaos, "run", "stride")
		if code != 0 {
			t.Fatalf("serial chaos run exit = %d", code)
		}
		resetGlobals()
		code, out, errOut := runCLI("-workers", "2", "-faults", chaos, "run", "stride")
		if code != 0 {
			t.Fatalf("chaos %q exit = %d\nstderr: %s", chaos, code, errOut)
		}
		if out != serial {
			t.Errorf("chaos %q output differs from serial\n--- serial ---\n%s\n--- chaos ---\n%s",
				chaos, serial, out)
		}
		if !strings.Contains(errOut, "worker fleet:") || !strings.Contains(errOut, "crash(es)") {
			t.Errorf("chaos %q: fleet summary missing from stderr: %q", chaos, errOut)
		}
	}
}

// TestNoiseEnsembleWorkersByteIdentity: a seeded noise ensemble renders
// the exact bytes of the serial run under a supervised worker fleet — the
// noise spec crosses the handshake, the replica index crosses the point
// spec, and both sides derive identical cache keys. A chaos schedule that
// crashes workers mid-ensemble must not perturb a single byte either.
func TestNoiseEnsembleWorkersByteIdentity(t *testing.T) {
	defer resetGlobals()
	args := []string{"-noise", "jitter=uniform:0.1,seed=7", "-replicas", "3", "run", "stride"}
	code, serial, _ := runCLI(args...)
	if code != 0 {
		t.Fatalf("serial ensemble exit = %d", code)
	}
	if !strings.Contains(serial, "±") {
		t.Errorf("ensemble output has no distribution cells:\n%s", serial)
	}
	resetGlobals()
	code, fleet, errOut := runCLI(append([]string{"-workers", "2"}, args...)...)
	if code != 0 {
		t.Fatalf("-workers 2 ensemble exit = %d\nstderr: %s", code, errOut)
	}
	if fleet != serial {
		t.Errorf("-workers 2 ensemble differs from serial\n--- serial ---\n%s\n--- workers ---\n%s",
			serial, fleet)
	}
	// Worker chaos: the noise directives ride -noise, the crash schedule
	// rides -faults; crashes are retried invisibly.
	chaosArgs := append([]string{"-workers", "2", "-faults", "wkill=1"}, args...)
	resetGlobals()
	code, chaos, errOut := runCLI(chaosArgs...)
	if code != 0 {
		t.Fatalf("chaos ensemble exit = %d\nstderr: %s", code, errOut)
	}
	if chaos != serial {
		t.Errorf("chaotic fleet ensemble differs from serial\n--- serial ---\n%s\n--- chaos ---\n%s",
			serial, chaos)
	}
	if !strings.Contains(errOut, "worker fleet:") {
		t.Errorf("fleet summary missing from stderr: %q", errOut)
	}
	if core.NoisePlan() != nil || core.Replicas() != 1 {
		t.Error("-noise/-replicas leaked into the process globals after run returned")
	}
}

// TestBadNoiseSpecIsUsageError: malformed -noise and -replicas values are
// rejected before any experiment runs.
func TestBadNoiseSpecIsUsageError(t *testing.T) {
	defer resetGlobals()
	if code, _, errOut := runCLI("-noise", "jitter=bogus:0.1", "run", "stride"); code != 2 {
		t.Fatalf("bad -noise exit = %d, want 2 (stderr %q)", code, errOut)
	} else if !strings.Contains(errOut, "bogus") {
		t.Errorf("stderr should name the bad distribution: %q", errOut)
	}
	if code, _, errOut := runCLI("-replicas", "0", "run", "stride"); code != 2 {
		t.Fatalf("-replicas 0 exit = %d, want 2 (stderr %q)", code, errOut)
	}
}

// TestWorkersQuarantinePoisonPoint: a schedule that kills the worker on
// every request poisons every point; the sweep survives, each cell degrades
// to !workercrash, and the run exits 1 with the full failure summary.
func TestWorkersQuarantinePoisonPoint(t *testing.T) {
	defer resetGlobals()
	code, out, errOut := runCLI("-workers", "1", "-faults", "wkill=0", "run", "stride")
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr: %s", code, errOut)
	}
	if !strings.Contains(out, "!workercrash") {
		t.Errorf("quarantined cells missing from output:\n%s", out)
	}
	// Analytic rows (no sweep points) still render alongside.
	if !strings.Contains(out, "DGEMM per-CPU") {
		t.Errorf("healthy rows missing:\n%s", out)
	}
	for _, want := range []string{"point(s) failed", "failures by kind: workercrash=3", "quarantined"} {
		if !strings.Contains(errOut, want) {
			t.Errorf("stderr summary missing %q: %q", want, errOut)
		}
	}
}

// TestCanceledRunReportsPartialResults: SIGINT/SIGTERM arrive as context
// cancellation; points degrade to !canceled cells and the run exits 1 with
// a partial-results notice instead of aborting.
func TestCanceledRunReportsPartialResults(t *testing.T) {
	defer resetGlobals()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out, errOut strings.Builder
	if code := run(ctx, []string{"run", "stride"}, &out, &errOut); code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "!canceled") {
		t.Errorf("canceled cells missing:\n%s", out.String())
	}
	if !strings.Contains(errOut.String(), "interrupted") || !strings.Contains(errOut.String(), "partial") {
		t.Errorf("partial-results notice missing: %q", errOut.String())
	}
}

// TestWorkerFlagServes: -worker is a first-class way to start a worker; it
// must speak the protocol on stdin/stdout (exercised via the env path in
// the other tests, so here we only check flag wiring rejects nothing).
func TestFailureSummaryTalliesKinds(t *testing.T) {
	defer resetGlobals()
	_, _, errOut := runCLI("-faults", "nodedown=0", "run", "stride")
	if !strings.Contains(errOut, "failures by kind: node-down=3") {
		t.Errorf("kind tally missing: %q", errOut)
	}
}
