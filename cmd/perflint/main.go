// Perflint maintains and enforces the committed analysis artifacts — the
// JSON files the analyzer suites embed and gate on — from a single
// type-checked view of the repository:
//
//   - the hotalloc escape budget
//     (internal/analysis/perflint/hotalloc_budget.json): per //perflint:hot
//     function, the static escape-site count recomputed here exactly as
//     `make lint` counts it, cross-checked against the gc escape
//     diagnostics (-gcflags=-m) attributed to the function's line range;
//   - the rankscale site budget
//     (internal/analysis/scalelint/rankscale_budget.json): per engine
//     function, the accepted number of O(ranks) allocation and goroutine
//     sites, recomputed from the same CFG walk the rankscale analyzer uses;
//   - the wire schema (internal/analysis/scalelint/wire_schema.json): the
//     gob shape of every //perflint:wire struct, stamped with the
//     dist.ProtocolVersion it was snapshotted at.
//
// With no flags it is a gate: any drift between the committed artifacts
// and the current source — a new escape or rank-scaled site, an
// improvement the budget has not banked, a wire struct whose shape moved —
// fails with exit 1. The compiler escape diff is skipped (with a notice)
// when the budget was written by a different toolchain.
//
//	go run ./cmd/perflint          # gate: diff current counts vs artifacts
//	go run ./cmd/perflint -write   # regenerate all three (then rebuild
//	                               # bin/detlint: the analyzers embed them)
//	go run ./cmd/perflint -stats   # run the full analyzer suite in-process
//	                               # and print per-analyzer wall time and
//	                               # diagnostic counts
//
// -write refuses to re-snapshot a drifted wire schema while
// dist.ProtocolVersion still equals the committed snapshot's version:
// changing a wire shape is a protocol change, and the bump is the reviewed
// evidence that both sides of the wire will be rebuilt. It also snapshots
// allocs/op from the latest BENCH_<date>.json into the escape budget's
// bench_allocs, which cmd/benchgate cross-checks so the static budget and
// the measured allocation rate cannot silently diverge.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"columbia/internal/analysis"
	"columbia/internal/analysis/checker"
	"columbia/internal/analysis/detlint"
	"columbia/internal/analysis/perflint"
	"columbia/internal/analysis/scalelint"
)

// modulePath is the repository's module; only its packages are analyzed.
const modulePath = "columbia"

// distPath is the package whose ProtocolVersion constant stamps the wire
// schema.
const distPath = "columbia/internal/dist"

// listedPackage is the subset of `go list -json` perflint consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
}

// repoPkg is one repository package parsed and type-checked from source,
// the unit every gate and the stats runner consume.
type repoPkg struct {
	listedPackage
	fset  *token.FileSet
	files []*ast.File
	info  *types.Info
	pkg   *types.Package
}

// hotCount is one hot function's measured escape counts plus the source
// range the compiler diagnostics are attributed over.
type hotCount struct {
	key      string
	static   int
	compiler int
	file     string // absolute path
	from, to int    // declaration line range, inclusive
	pkg      string // import path, for reporting
	shortPos string // file:line of the declaration, repo-relative
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "perflint:", err)
		os.Exit(1)
	}
}

func run() error {
	write := flag.Bool("write", false, "regenerate the artifact files instead of gating on them")
	stats := flag.Bool("stats", false, "run the full detlint+perflint+scalelint suite in-process and print per-analyzer wall time and diagnostic counts")
	budgetPath := flag.String("budget", filepath.Join("internal", "analysis", "perflint", "hotalloc_budget.json"),
		"path of the committed escape budget")
	rankPath := flag.String("rankbudget", filepath.Join("internal", "analysis", "scalelint", "rankscale_budget.json"),
		"path of the committed rank-scaled site budget")
	schemaPath := flag.String("wireschema", filepath.Join("internal", "analysis", "scalelint", "wire_schema.json"),
		"path of the committed wire schema")
	benchDir := flag.String("benchdir", ".", "directory holding BENCH_*.json baselines (for bench_allocs)")
	flag.Parse()
	if *write && *stats {
		return errors.New("-write and -stats are mutually exclusive")
	}

	listed, exports, err := listRepoPackages()
	if err != nil {
		return err
	}
	pkgs, err := typecheckAll(listed, exports)
	if err != nil {
		return err
	}

	if *stats {
		return runStats(pkgs)
	}

	counts := staticCounts(pkgs)
	goVersion := runtime.Version()
	if err := compilerCounts(counts); err != nil {
		return err
	}
	ranks := rankCounts(pkgs)
	shapes := wireShapes(pkgs)
	pv, hasPV := distProtocolVersion(pkgs)

	if *write {
		if err := writeBudget(*budgetPath, *benchDir, goVersion, counts); err != nil {
			return err
		}
		if err := writeRankBudget(*rankPath, ranks); err != nil {
			return err
		}
		return writeWireSchema(*schemaPath, shapes, pv, hasPV)
	}

	var failures []string
	hotFailures, err := gateHot(*budgetPath, goVersion, counts)
	if err != nil {
		return err
	}
	failures = append(failures, hotFailures...)
	rankFailures, err := gateRank(*rankPath, ranks)
	if err != nil {
		return err
	}
	failures = append(failures, rankFailures...)
	wireFailures, err := gateWire(*schemaPath, shapes, pv, hasPV)
	if err != nil {
		return err
	}
	failures = append(failures, wireFailures...)

	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Printf("  %s\n", f)
		}
		return fmt.Errorf("artifact gates failed: %d finding(s)", len(failures))
	}
	var rankSites int
	for _, n := range ranks {
		rankSites += n
	}
	fmt.Printf("perflint: %d hot functions within budget, %d rank-scaled sites budgeted, %d wire structs frozen at protocol %d\n",
		len(counts), rankSites, len(shapes), pv)
	return nil
}

// listRepoPackages resolves every package in the module plus the export
// data of everything they import, via the go command.
func listRepoPackages() ([]listedPackage, map[string]string, error) {
	cmd := exec.Command("go", "list", "-deps", "-export", "-json=ImportPath,Dir,GoFiles,Export", "./...")
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("go list: %w", err)
	}
	exports := make(map[string]string)
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("go list output: %w", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if len(p.GoFiles) == 0 {
			continue
		}
		if p.ImportPath == modulePath || strings.HasPrefix(p.ImportPath, modulePath+"/") {
			pkgs = append(pkgs, p)
		}
	}
	if len(pkgs) == 0 {
		return nil, nil, fmt.Errorf("go list resolved no %s packages; run from the repository root", modulePath)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, exports, nil
}

// typecheckAll parses and type-checks each repository package from source,
// importing dependencies through their gc export data — the same view the
// vet driver gives the analyzers.
func typecheckAll(listed []listedPackage, exports map[string]string) ([]*repoPkg, error) {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	var pkgs []*repoPkg
	for _, p := range listed {
		fset := token.NewFileSet()
		var files []*ast.File
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil,
				parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		}
		tconf := &types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
		tpkg, err := tconf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("typecheck %s: %w", p.ImportPath, err)
		}
		pkgs = append(pkgs, &repoPkg{listedPackage: p, fset: fset, files: files, info: info, pkg: tpkg})
	}
	return pkgs, nil
}

// staticCounts counts the hotalloc analyzer's escape sites per annotated
// function in the hot packages.
func staticCounts(pkgs []*repoPkg) map[string]*hotCount {
	hot := make(map[string]bool, len(perflint.HotPackages))
	for _, p := range perflint.HotPackages {
		hot[p] = true
	}
	counts := make(map[string]*hotCount)
	for _, p := range pkgs {
		if !hot[p.ImportPath] {
			continue
		}
		for _, hf := range perflint.HotFuncs(p.ImportPath, p.fset, p.files) {
			start := p.fset.Position(hf.Decl.Pos())
			end := p.fset.Position(hf.Decl.End())
			counts[hf.Key] = &hotCount{
				key:      hf.Key,
				static:   len(perflint.EscapeSites(p.info, hf.Decl)),
				file:     start.Filename,
				from:     start.Line,
				to:       end.Line,
				pkg:      p.ImportPath,
				shortPos: fmt.Sprintf("%s:%d", relPath(start.Filename), start.Line),
			}
		}
	}
	return counts
}

// rankCounts counts the rankscale analyzer's O(ranks) sites per function
// key across the engine packages — the numbers the committed budget fixes.
func rankCounts(pkgs []*repoPkg) map[string]int {
	counts := make(map[string]int)
	for _, p := range pkgs {
		if !scalelint.RankScoped(p.ImportPath) {
			continue
		}
		for _, s := range scalelint.RankSites(p.ImportPath, p.fset, p.files, p.info) {
			counts[s.Key]++
		}
	}
	return counts
}

// wireShapes collects the current gob shape of every //perflint:wire
// struct in the repository, keyed "<pkgpath>.<Name>".
func wireShapes(pkgs []*repoPkg) map[string][]scalelint.WireField {
	shapes := make(map[string][]scalelint.WireField)
	for _, p := range pkgs {
		for _, ws := range scalelint.WireShapes(p.ImportPath, p.fset, p.files, p.info) {
			shapes[ws.Key] = ws.Fields
		}
	}
	return shapes
}

// distProtocolVersion reads dist.ProtocolVersion from the type-checked
// dist package.
func distProtocolVersion(pkgs []*repoPkg) (int, bool) {
	for _, p := range pkgs {
		if p.ImportPath == distPath {
			return scalelint.ProtocolVersionOf(p.pkg)
		}
	}
	return 0, false
}

// escapeLine matches one gc escape diagnostic, e.g.
//
//	internal/sweep/sweep.go:239:7: &slotWaiter{...} escapes to heap
//	internal/sweep/sweep.go:241:2: moved to heap: w
var escapeLine = regexp.MustCompile(`^(.+\.go):(\d+):\d+: (?:.* escapes to heap|moved to heap: .*)$`)

// compilerCounts builds each hot package with -gcflags=-m and attributes
// the heap-escape diagnostics that land inside a hot function's line range.
// The go build cache replays -m output on cache hits, so repeated gates are
// cheap.
func compilerCounts(counts map[string]*hotCount) error {
	byPkg := make(map[string][]*hotCount)
	for _, c := range counts {
		byPkg[c.pkg] = append(byPkg[c.pkg], c)
	}
	for _, pkg := range sortedKeys(byPkg) {
		cmd := exec.Command("go", "build", "-gcflags="+pkg+"=-m", pkg)
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		if err := cmd.Run(); err != nil {
			os.Stderr.Write(stderr.Bytes())
			return fmt.Errorf("go build -gcflags=-m %s: %w", pkg, err)
		}
		sc := bufio.NewScanner(&stderr)
		for sc.Scan() {
			m := escapeLine.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			file, err := filepath.Abs(m[1])
			if err != nil {
				continue
			}
			line, _ := strconv.Atoi(m[2])
			for _, c := range byPkg[pkg] {
				if c.file == file && c.from <= line && line <= c.to {
					c.compiler++
				}
			}
		}
		if err := sc.Err(); err != nil {
			return err
		}
	}
	return nil
}

// gateHot diffs the measured escape counts against the committed budget.
func gateHot(budgetPath, goVersion string, counts map[string]*hotCount) ([]string, error) {
	data, err := os.ReadFile(budgetPath)
	if err != nil {
		return nil, fmt.Errorf("%w (run `go run ./cmd/perflint -write` to create it)", err)
	}
	budget, err := perflint.ParseBudget(data)
	if err != nil {
		return nil, err
	}
	compilerComparable := budget.Go == goVersion
	if !compilerComparable {
		fmt.Printf("perflint: budget written by %s, running %s — compiler escape diff skipped (regenerate with -write to re-arm it)\n",
			budget.Go, goVersion)
	}

	var failures []string
	for _, key := range sortedKeys(counts) {
		c := counts[key]
		b, ok := budget.Functions[key]
		if !ok {
			failures = append(failures, fmt.Sprintf(
				"ESCAPE %s (%s): hot function not budgeted — run `go run ./cmd/perflint -write` and commit the budget",
				key, c.shortPos))
			continue
		}
		if c.static > b.Static {
			failures = append(failures, fmt.Sprintf(
				"ESCAPE %s (%s): %d static escape site(s), budget %d — a new allocation escapes this hot function; make it stack-local or justify and regenerate",
				key, c.shortPos, c.static, b.Static))
		} else if c.static < b.Static {
			failures = append(failures, fmt.Sprintf(
				"ESCAPE %s (%s): %d static escape site(s), budget %d — an escape was eliminated; bank the win with `go run ./cmd/perflint -write` so it cannot silently regress",
				key, c.shortPos, c.static, b.Static))
		}
		if compilerComparable && c.compiler != b.Compiler {
			direction := "new compiler-reported heap escape(s)"
			if c.compiler < b.Compiler {
				direction = "fewer compiler-reported heap escapes than budgeted; bank the win"
			}
			failures = append(failures, fmt.Sprintf(
				"ESCAPE %s (%s): compiler reports %d heap escape(s), budget %d — %s (`go run ./cmd/perflint -write`)",
				key, c.shortPos, c.compiler, b.Compiler, direction))
		}
	}
	for _, key := range sortedKeys(budget.Functions) {
		if _, ok := counts[key]; !ok {
			failures = append(failures, fmt.Sprintf(
				"ESCAPE %s: stale budget entry — the function is gone or no longer //perflint:hot; regenerate with `go run ./cmd/perflint -write`",
				key))
		}
	}
	return failures, nil
}

// gateRank diffs the measured rank-scaled site counts against the
// committed budget. The rankscale analyzer fails a build only when a
// function exceeds its budget; this gate also catches the other drifts —
// an unbanked improvement and a stale entry — exactly as the escape gate
// does for hotalloc.
func gateRank(rankPath string, ranks map[string]int) ([]string, error) {
	data, err := os.ReadFile(rankPath)
	if err != nil {
		return nil, fmt.Errorf("%w (run `go run ./cmd/perflint -write` to create it)", err)
	}
	budget, err := scalelint.ParseRankBudget(data)
	if err != nil {
		return nil, err
	}
	var failures []string
	for _, key := range sortedKeys(ranks) {
		n, b := ranks[key], budget.Functions[key]
		if n > b {
			failures = append(failures, fmt.Sprintf(
				"RANK %s: %d rank-scaled site(s), budget %d — a new O(ranks) allocation or spawn site appeared; pool it behind //perflint:pooled or regenerate and review the budget (`go run ./cmd/perflint -write`)",
				key, n, b))
		} else if n < b {
			failures = append(failures, fmt.Sprintf(
				"RANK %s: %d rank-scaled site(s), budget %d — a site was pooled or removed; bank the win with `go run ./cmd/perflint -write` so it cannot silently regress",
				key, n, b))
		}
	}
	for _, key := range sortedKeys(budget.Functions) {
		if _, ok := ranks[key]; !ok {
			failures = append(failures, fmt.Sprintf(
				"RANK %s: stale budget entry — the function is gone, fully pooled, or no longer rank-scaled; regenerate with `go run ./cmd/perflint -write`",
				key))
		}
	}
	return failures, nil
}

// gateWire diffs the current wire shapes against the committed schema and
// the dist.ProtocolVersion it was stamped with.
func gateWire(schemaPath string, shapes map[string][]scalelint.WireField, pv int, hasPV bool) ([]string, error) {
	data, err := os.ReadFile(schemaPath)
	if err != nil {
		return nil, fmt.Errorf("%w (run `go run ./cmd/perflint -write` to create it)", err)
	}
	schema, err := scalelint.ParseWireSchema(data)
	if err != nil {
		return nil, err
	}
	var failures []string
	if !hasPV {
		failures = append(failures,
			"WIRE dist.ProtocolVersion constant not found — the schema snapshot cannot be validated against a protocol version")
	} else if pv != schema.ProtocolVersion {
		failures = append(failures, fmt.Sprintf(
			"WIRE schema snapshotted at protocol %d but dist declares %d — regenerate with `go run ./cmd/perflint -write`",
			schema.ProtocolVersion, pv))
	}
	for _, key := range sortedKeys(shapes) {
		want, ok := schema.Structs[key]
		if !ok {
			failures = append(failures, fmt.Sprintf(
				"WIRE %s: wire struct not in the committed schema — snapshot it with `go run ./cmd/perflint -write`", key))
			continue
		}
		if diff := scalelint.ShapeDiff(want, shapes[key]); diff != "" {
			failures = append(failures, fmt.Sprintf(
				"WIRE %s: gob shape drifted from the committed schema (%s) — bump dist.ProtocolVersion and regenerate", key, diff))
		}
	}
	for _, key := range sortedKeys(schema.Structs) {
		if _, ok := shapes[key]; !ok {
			failures = append(failures, fmt.Sprintf(
				"WIRE %s: stale schema entry — the struct is gone or lost its //perflint:wire marker; bump dist.ProtocolVersion and regenerate", key))
		}
	}
	return failures, nil
}

// writeBudget regenerates the committed escape budget from the measured
// counts and the latest benchmark baseline's allocs/op.
func writeBudget(budgetPath, benchDir, goVersion string, counts map[string]*hotCount) error {
	b := perflint.Budget{Go: goVersion, Functions: make(map[string]perflint.FuncBudget, len(counts))}
	for key, c := range counts {
		b.Functions[key] = perflint.FuncBudget{Static: c.static, Compiler: c.compiler}
	}
	allocs, base, err := benchAllocs(benchDir)
	if err != nil {
		return err
	}
	b.BenchAllocs = allocs
	data, err := json.MarshalIndent(&b, "", "\t")
	if err != nil {
		return err
	}
	if err := os.WriteFile(budgetPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("perflint: wrote %s (%d hot functions", budgetPath, len(counts))
	if base != "" {
		fmt.Printf(", allocs/op snapshot from %s", filepath.Base(base))
	}
	fmt.Printf(") — rebuild bin/detlint to embed it\n")
	return nil
}

// writeRankBudget regenerates the committed rank-scaled site budget.
func writeRankBudget(rankPath string, ranks map[string]int) error {
	b := scalelint.RankBudget{Functions: make(map[string]int, len(ranks))}
	for key, n := range ranks {
		if n > 0 {
			b.Functions[key] = n
		}
	}
	data, err := json.MarshalIndent(&b, "", "\t")
	if err != nil {
		return err
	}
	if err := os.WriteFile(rankPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("perflint: wrote %s (%d rank-budgeted functions) — rebuild bin/detlint to embed it\n",
		rankPath, len(b.Functions))
	return nil
}

// writeWireSchema re-snapshots the wire schema — unless the shapes drifted
// while dist.ProtocolVersion still equals the committed snapshot's
// version. A shape change is a protocol change, and the bump is the
// reviewed evidence that every process on the wire will be rebuilt; a tool
// that regenerated past that check would erase exactly the drift the
// wiredrift analyzer exists to refuse. New structs snapshot freely: adding
// a message type is backward compatible at the gob layer.
func writeWireSchema(schemaPath string, shapes map[string][]scalelint.WireField, pv int, hasPV bool) error {
	if !hasPV {
		return errors.New("wire schema: dist.ProtocolVersion constant not found; cannot stamp the snapshot")
	}
	committed := &scalelint.WireSchema{Structs: map[string][]scalelint.WireField{}}
	if data, err := os.ReadFile(schemaPath); err == nil {
		if s, perr := scalelint.ParseWireSchema(data); perr == nil {
			committed = s
		}
	}
	if pv == committed.ProtocolVersion {
		var changes []string
		for _, key := range sortedKeys(committed.Structs) {
			cur, ok := shapes[key]
			if !ok {
				changes = append(changes, key+" was removed")
				continue
			}
			if diff := scalelint.ShapeDiff(committed.Structs[key], cur); diff != "" {
				changes = append(changes, key+": "+diff)
			}
		}
		if len(changes) > 0 {
			return fmt.Errorf(
				"refusing to re-snapshot a drifted wire schema at unchanged protocol version %d (%s) — bump dist.ProtocolVersion first, then -write",
				pv, strings.Join(changes, "; "))
		}
	}
	s := scalelint.WireSchema{ProtocolVersion: pv, Structs: shapes}
	data, err := json.MarshalIndent(&s, "", "\t")
	if err != nil {
		return err
	}
	if err := os.WriteFile(schemaPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("perflint: wrote %s (%d wire structs at protocol %d) — rebuild bin/detlint to embed it\n",
		schemaPath, len(shapes), pv)
	return nil
}

// runStats runs every analyzer of the three suites in-process over the
// repository packages and prints per-analyzer wall time and surviving
// diagnostic counts. One analyzer runs at a time so the timings are
// attributable; the allow protocol is applied exactly as `make lint`
// applies it, and each suppression is judged once — by the run of the
// analyzer it names. Stale or malformed allows surface on the final
// driver line.
func runStats(pkgs []*repoPkg) error {
	suite := make([]*analysis.Analyzer, 0, len(detlint.Suite)+len(perflint.Suite)+len(scalelint.Suite))
	suite = append(suite, detlint.Suite...)
	suite = append(suite, perflint.Suite...)
	suite = append(suite, scalelint.Suite...)
	known := append(append(detlint.Names(), perflint.Names()...), scalelint.Names()...)

	fmt.Printf("perflint: analyzer stats over %d packages\n", len(pkgs))
	start := time.Now()
	var total, allowDiags int
	for _, a := range suite {
		aStart := time.Now()
		n := 0
		for _, p := range pkgs {
			diags, err := checker.Run(&checker.Package{Fset: p.fset, Files: p.files, Pkg: p.pkg, Info: p.info},
				[]*analysis.Analyzer{a}, known)
			if err != nil {
				return err
			}
			for _, d := range diags {
				if d.Analyzer == a.Name {
					n++
				} else {
					allowDiags++
				}
			}
		}
		total += n
		fmt.Printf("  %-18s %9.1fms  %d diagnostic(s)\n", a.Name, float64(time.Since(aStart).Microseconds())/1000, n)
	}
	fmt.Printf("  %-18s %9.1fms  %d diagnostic(s), %d allow-protocol finding(s)\n",
		"total", float64(time.Since(start).Microseconds())/1000, total, allowDiags)
	if total+allowDiags > 0 {
		fmt.Printf("perflint: diagnostics above are informational here — `go vet -vettool=bin/detlint ./...` is the blocking gate\n")
	}
	return nil
}

// benchAllocs snapshots allocs/op from the lexically latest BENCH_*.json,
// or returns nil when no baseline exists.
func benchAllocs(dir string) (map[string]float64, string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil || len(matches) == 0 {
		return nil, "", err
	}
	sort.Strings(matches)
	base := matches[len(matches)-1]
	data, err := os.ReadFile(base)
	if err != nil {
		return nil, "", err
	}
	var baseline struct {
		Benchmarks map[string]struct {
			AllocsPerOp float64 `json:"allocs_per_op"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(data, &baseline); err != nil {
		return nil, "", fmt.Errorf("%s: %w", base, err)
	}
	allocs := make(map[string]float64, len(baseline.Benchmarks))
	for name, m := range baseline.Benchmarks {
		if m.AllocsPerOp > 0 {
			allocs[name] = m.AllocsPerOp
		}
	}
	return allocs, base, nil
}

func relPath(abs string) string {
	wd, err := os.Getwd()
	if err != nil {
		return abs
	}
	if rel, err := filepath.Rel(wd, abs); err == nil {
		return rel
	}
	return abs
}

func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
