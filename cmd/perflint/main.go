// Perflint maintains and enforces the hotalloc escape budget
// (internal/analysis/perflint/hotalloc_budget.json) from two independent
// views of the same hot functions:
//
//   - the static view: the hotalloc analyzer's own escape-site count,
//     recomputed here over the hot packages exactly as `make lint` counts
//     it, and
//   - the compiler's view: the gc escape diagnostics (-gcflags=-m)
//     attributed to each //perflint:hot function's line range.
//
// With no flags it is a gate: any hot function whose current counts differ
// from the committed budget — a new escape, a stale entry for a function
// that lost its annotation, or an improvement the budget has not banked —
// fails with exit 1. The compiler diff is skipped (with a notice) when the
// budget was written by a different toolchain, since escape analysis
// results are only comparable within one compiler version.
//
//	go run ./cmd/perflint          # gate: diff current counts vs budget
//	go run ./cmd/perflint -write   # regenerate the budget (then rebuild
//	                               # bin/detlint: the analyzer embeds it)
//
// -write also snapshots allocs/op from the latest BENCH_<date>.json into
// the budget's bench_allocs, which cmd/benchgate cross-checks so the
// static budget and the measured allocation rate cannot silently diverge.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"

	"columbia/internal/analysis/perflint"
)

// listedPackage is the subset of `go list -json` perflint consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
}

// hotCount is one hot function's measured escape counts plus the source
// range the compiler diagnostics are attributed over.
type hotCount struct {
	key      string
	static   int
	compiler int
	file     string // absolute path
	from, to int    // declaration line range, inclusive
	pkg      string // import path, for reporting
	shortPos string // file:line of the declaration, repo-relative
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "perflint:", err)
		os.Exit(1)
	}
}

func run() error {
	write := flag.Bool("write", false, "regenerate the budget file instead of gating on it")
	budgetPath := flag.String("budget", filepath.Join("internal", "analysis", "perflint", "hotalloc_budget.json"),
		"path of the committed escape budget")
	benchDir := flag.String("benchdir", ".", "directory holding BENCH_*.json baselines (for bench_allocs)")
	flag.Parse()

	pkgs, exports, err := listPackages(perflint.HotPackages)
	if err != nil {
		return err
	}
	counts, err := staticCounts(pkgs, exports)
	if err != nil {
		return err
	}
	goVersion := runtime.Version()
	if err := compilerCounts(counts); err != nil {
		return err
	}

	if *write {
		return writeBudget(*budgetPath, *benchDir, goVersion, counts)
	}
	return gate(*budgetPath, goVersion, counts)
}

// listPackages resolves the hot packages and the export data of everything
// they import, via the go command.
func listPackages(patterns []string) ([]listedPackage, map[string]string, error) {
	args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Dir,GoFiles,Export"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("go list: %w", err)
	}
	want := make(map[string]bool, len(patterns))
	for _, p := range patterns {
		want[p] = true
	}
	exports := make(map[string]string)
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("go list output: %w", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if want[p.ImportPath] {
			pkgs = append(pkgs, p)
		}
	}
	if len(pkgs) != len(patterns) {
		return nil, nil, fmt.Errorf("go list resolved %d of %d hot packages", len(pkgs), len(patterns))
	}
	return pkgs, exports, nil
}

// staticCounts type-checks each hot package from source and counts the
// hotalloc analyzer's escape sites per annotated function.
func staticCounts(pkgs []listedPackage, exports map[string]string) (map[string]*hotCount, error) {
	counts := make(map[string]*hotCount)
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	for _, p := range pkgs {
		fset := token.NewFileSet()
		var files []*ast.File
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil,
				parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		}
		tconf := &types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
		if _, err := tconf.Check(p.ImportPath, fset, files, info); err != nil {
			return nil, fmt.Errorf("typecheck %s: %w", p.ImportPath, err)
		}
		for _, hf := range perflint.HotFuncs(p.ImportPath, fset, files) {
			start := fset.Position(hf.Decl.Pos())
			end := fset.Position(hf.Decl.End())
			counts[hf.Key] = &hotCount{
				key:      hf.Key,
				static:   len(perflint.EscapeSites(info, hf.Decl)),
				file:     start.Filename,
				from:     start.Line,
				to:       end.Line,
				pkg:      p.ImportPath,
				shortPos: fmt.Sprintf("%s:%d", relPath(start.Filename), start.Line),
			}
		}
	}
	return counts, nil
}

// escapeLine matches one gc escape diagnostic, e.g.
//
//	internal/sweep/sweep.go:239:7: &slotWaiter{...} escapes to heap
//	internal/sweep/sweep.go:241:2: moved to heap: w
var escapeLine = regexp.MustCompile(`^(.+\.go):(\d+):\d+: (?:.* escapes to heap|moved to heap: .*)$`)

// compilerCounts builds each hot package with -gcflags=-m and attributes
// the heap-escape diagnostics that land inside a hot function's line range.
// The go build cache replays -m output on cache hits, so repeated gates are
// cheap.
func compilerCounts(counts map[string]*hotCount) error {
	byPkg := make(map[string][]*hotCount)
	for _, c := range counts {
		byPkg[c.pkg] = append(byPkg[c.pkg], c)
	}
	for _, pkg := range sortedKeys(byPkg) {
		cmd := exec.Command("go", "build", "-gcflags="+pkg+"=-m", pkg)
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		if err := cmd.Run(); err != nil {
			os.Stderr.Write(stderr.Bytes())
			return fmt.Errorf("go build -gcflags=-m %s: %w", pkg, err)
		}
		sc := bufio.NewScanner(&stderr)
		for sc.Scan() {
			m := escapeLine.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			file, err := filepath.Abs(m[1])
			if err != nil {
				continue
			}
			line, _ := strconv.Atoi(m[2])
			for _, c := range byPkg[pkg] {
				if c.file == file && c.from <= line && line <= c.to {
					c.compiler++
				}
			}
		}
		if err := sc.Err(); err != nil {
			return err
		}
	}
	return nil
}

// gate diffs the measured counts against the committed budget.
func gate(budgetPath, goVersion string, counts map[string]*hotCount) error {
	data, err := os.ReadFile(budgetPath)
	if err != nil {
		return fmt.Errorf("%w (run `go run ./cmd/perflint -write` to create it)", err)
	}
	budget, err := perflint.ParseBudget(data)
	if err != nil {
		return err
	}
	compilerComparable := budget.Go == goVersion
	if !compilerComparable {
		fmt.Printf("perflint: budget written by %s, running %s — compiler escape diff skipped (regenerate with -write to re-arm it)\n",
			budget.Go, goVersion)
	}

	var failures []string
	for _, key := range sortedKeys(counts) {
		c := counts[key]
		b, ok := budget.Functions[key]
		if !ok {
			failures = append(failures, fmt.Sprintf(
				"%s (%s): hot function not budgeted — run `go run ./cmd/perflint -write` and commit the budget",
				key, c.shortPos))
			continue
		}
		if c.static > b.Static {
			failures = append(failures, fmt.Sprintf(
				"%s (%s): %d static escape site(s), budget %d — a new allocation escapes this hot function; make it stack-local or justify and regenerate",
				key, c.shortPos, c.static, b.Static))
		} else if c.static < b.Static {
			failures = append(failures, fmt.Sprintf(
				"%s (%s): %d static escape site(s), budget %d — an escape was eliminated; bank the win with `go run ./cmd/perflint -write` so it cannot silently regress",
				key, c.shortPos, c.static, b.Static))
		}
		if compilerComparable && c.compiler != b.Compiler {
			direction := "new compiler-reported heap escape(s)"
			if c.compiler < b.Compiler {
				direction = "fewer compiler-reported heap escapes than budgeted; bank the win"
			}
			failures = append(failures, fmt.Sprintf(
				"%s (%s): compiler reports %d heap escape(s), budget %d — %s (`go run ./cmd/perflint -write`)",
				key, c.shortPos, c.compiler, b.Compiler, direction))
		}
	}
	for _, key := range sortedKeys(budget.Functions) {
		if _, ok := counts[key]; !ok {
			failures = append(failures, fmt.Sprintf(
				"%s: stale budget entry — the function is gone or no longer //perflint:hot; regenerate with `go run ./cmd/perflint -write`",
				key))
		}
	}

	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Printf("  ESCAPE %s\n", f)
		}
		return fmt.Errorf("escape budget gate failed: %d finding(s)", len(failures))
	}
	fmt.Printf("perflint: %d hot functions within budget (%s)\n", len(counts), budgetPath)
	return nil
}

// writeBudget regenerates the committed budget from the measured counts
// and the latest benchmark baseline's allocs/op.
func writeBudget(budgetPath, benchDir, goVersion string, counts map[string]*hotCount) error {
	b := perflint.Budget{Go: goVersion, Functions: make(map[string]perflint.FuncBudget, len(counts))}
	for key, c := range counts {
		b.Functions[key] = perflint.FuncBudget{Static: c.static, Compiler: c.compiler}
	}
	allocs, base, err := benchAllocs(benchDir)
	if err != nil {
		return err
	}
	b.BenchAllocs = allocs
	data, err := json.MarshalIndent(&b, "", "\t")
	if err != nil {
		return err
	}
	if err := os.WriteFile(budgetPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("perflint: wrote %s (%d hot functions", budgetPath, len(counts))
	if base != "" {
		fmt.Printf(", allocs/op snapshot from %s", filepath.Base(base))
	}
	fmt.Printf(") — rebuild bin/detlint to embed it\n")
	return nil
}

// benchAllocs snapshots allocs/op from the lexically latest BENCH_*.json,
// or returns nil when no baseline exists.
func benchAllocs(dir string) (map[string]float64, string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil || len(matches) == 0 {
		return nil, "", err
	}
	sort.Strings(matches)
	base := matches[len(matches)-1]
	data, err := os.ReadFile(base)
	if err != nil {
		return nil, "", err
	}
	var baseline struct {
		Benchmarks map[string]struct {
			AllocsPerOp float64 `json:"allocs_per_op"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(data, &baseline); err != nil {
		return nil, "", fmt.Errorf("%s: %w", base, err)
	}
	allocs := make(map[string]float64, len(baseline.Benchmarks))
	for name, m := range baseline.Benchmarks {
		if m.AllocsPerOp > 0 {
			allocs[name] = m.AllocsPerOp
		}
	}
	return allocs, base, nil
}

func relPath(abs string) string {
	wd, err := os.Getwd()
	if err != nil {
		return abs
	}
	if rel, err := filepath.Rel(wd, abs); err == nil {
		return rel
	}
	return abs
}

func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
