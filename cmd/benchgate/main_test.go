package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: columbia
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkSweepParallel-8             	       1	5981234567 ns/op
BenchmarkEngineAlltoall-8            	      12	 102424883 ns/op	 4096 B/op	       3 allocs/op
BenchmarkEngineAlltoallGoroutine-8   	      10	 121781836 ns/op
BenchmarkEngine2048Ranks-8           	      25	  45600000 ns/op
some unrelated line
PASS
ok  	columbia	30.910s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4: %v", len(got), got)
	}
	// The -8 GOMAXPROCS suffix must be stripped.
	m, ok := got["BenchmarkEngineAlltoall"]
	if !ok {
		t.Fatalf("BenchmarkEngineAlltoall missing (suffix not stripped?): %v", got)
	}
	if m.NsPerOp != 102424883 {
		t.Errorf("ns/op = %v, want 102424883", m.NsPerOp)
	}
	if m.BytesPerOp != 4096 || m.AllocsPerOp != 3 {
		t.Errorf("benchmem columns = %v B/op %v allocs/op, want 4096/3", m.BytesPerOp, m.AllocsPerOp)
	}
	if got["BenchmarkSweepParallel"].NsPerOp != 5981234567 {
		t.Errorf("large ns/op parsed as %v", got["BenchmarkSweepParallel"].NsPerOp)
	}
}

func TestParseBenchKeepsMinimum(t *testing.T) {
	const repeated = `BenchmarkX-8   1   300 ns/op
BenchmarkX-8   1   100 ns/op	 64 B/op	 2 allocs/op
BenchmarkX-8   1   200 ns/op
`
	got, err := parseBench(strings.NewReader(repeated))
	if err != nil {
		t.Fatal(err)
	}
	m := got["BenchmarkX"]
	if m.NsPerOp != 100 {
		t.Errorf("ns/op = %v, want the minimum 100 across -count runs", m.NsPerOp)
	}
	if m.BytesPerOp != 64 || m.AllocsPerOp != 2 {
		t.Errorf("benchmem columns must come from the minimum run: got %v B/op %v allocs/op", m.BytesPerOp, m.AllocsPerOp)
	}
}

func TestCompare(t *testing.T) {
	base := map[string]Measure{
		"A": {NsPerOp: 100},
		"B": {NsPerOp: 100},
		"C": {NsPerOp: 100},
		"D": {NsPerOp: 0}, // degenerate baseline: never flags
	}
	current := map[string]Measure{
		"A": {NsPerOp: 114}, // +14%: under the 15% threshold
		"B": {NsPerOp: 116}, // +16%: regression
		"C": {NsPerOp: 80},  // improvement
		"D": {NsPerOp: 50},
		"E": {NsPerOp: 1e9}, // new benchmark: no baseline, cannot regress
	}
	regs := compare(base, current, 0.15, 0.10)
	if len(regs) != 1 || regs[0].name != "B" {
		t.Fatalf("regressions = %+v, want exactly B", regs)
	}
	if regs[0].base != 100 || regs[0].cur != 116 || regs[0].metric != "ns/op" {
		t.Errorf("B recorded as %v -> %v (%s), want 100 -> 116 (ns/op)", regs[0].base, regs[0].cur, regs[0].metric)
	}
}

func TestCompareGatesAllocs(t *testing.T) {
	base := map[string]Measure{
		"A": {NsPerOp: 100, AllocsPerOp: 1000},
		"B": {NsPerOp: 100, AllocsPerOp: 1000},
		"C": {NsPerOp: 100}, // baseline predates -benchmem: allocs not comparable
	}
	current := map[string]Measure{
		"A": {NsPerOp: 130, AllocsPerOp: 1200}, // both metrics blown
		"B": {NsPerOp: 90, AllocsPerOp: 1050},  // faster, allocs within the 10% margin
		"C": {NsPerOp: 100, AllocsPerOp: 9999},
	}
	regs := compare(base, current, 0.15, 0.10)
	if len(regs) != 2 {
		t.Fatalf("regressions = %+v, want A's two metrics", regs)
	}
	for _, r := range regs {
		if r.name != "A" {
			t.Errorf("unexpected regression %+v", r)
		}
	}
	if regs[0].metric != "allocs/op" || regs[1].metric != "ns/op" {
		t.Errorf("metrics ordered %s, %s; want allocs/op then ns/op", regs[0].metric, regs[1].metric)
	}
}

func TestCompareAllocsOnlyRegression(t *testing.T) {
	base := map[string]Measure{"A": {NsPerOp: 100, AllocsPerOp: 1000}}
	current := map[string]Measure{"A": {NsPerOp: 90, AllocsPerOp: 2000}}
	regs := compare(base, current, 0.15, 0.10)
	if len(regs) != 1 || regs[0].metric != "allocs/op" || regs[0].cur != 2000 {
		t.Fatalf("got %+v, want one allocs/op regression despite the ns/op improvement", regs)
	}
}

func TestScalingCurve(t *testing.T) {
	ms := map[string]Measure{
		"BenchmarkSweepSerial":   {NsPerOp: 8e9},
		"BenchmarkSweepJ2":       {NsPerOp: 5e9},
		"BenchmarkSweepJ4":       {NsPerOp: 4e9},
		"BenchmarkSweepParallel": {NsPerOp: 2e9},
	}
	curve := scalingCurve(ms)
	if len(curve) != 4 {
		t.Fatalf("curve has %d points, want 4: %+v", len(curve), curve)
	}
	wantWorkers := []int{1, 2, 4, 8}
	for i, p := range curve {
		if p.Workers != wantWorkers[i] {
			t.Errorf("point %d at workers=%d, want %d (curve must be in worker order)", i, p.Workers, wantWorkers[i])
		}
	}
	if curve[0].Speedup != 1 {
		t.Errorf("serial speedup = %v, want 1", curve[0].Speedup)
	}
	if curve[3].Speedup != 4 {
		t.Errorf("-j 8 speedup = %v, want 4", curve[3].Speedup)
	}
}

func TestScalingCurveNeedsSerialAndOneMore(t *testing.T) {
	if c := scalingCurve(map[string]Measure{"BenchmarkSweepParallel": {NsPerOp: 1}}); c != nil {
		t.Errorf("curve without a serial anchor: %+v", c)
	}
	if c := scalingCurve(map[string]Measure{"BenchmarkSweepSerial": {NsPerOp: 1}}); c != nil {
		t.Errorf("single-point curve: %+v", c)
	}
}

func TestScalingGate(t *testing.T) {
	pass := map[string]Measure{
		"BenchmarkSweepSerial":   {NsPerOp: 6e9},
		"BenchmarkSweepParallel": {NsPerOp: 5e9},
	}
	if msg := scalingGate(pass); msg != "" {
		t.Errorf("gate fired on a faster parallel sweep: %s", msg)
	}
	tie := map[string]Measure{
		"BenchmarkSweepSerial":   {NsPerOp: 6e9},
		"BenchmarkSweepParallel": {NsPerOp: 6e9},
	}
	if msg := scalingGate(tie); msg == "" {
		t.Error("gate passed a parallel sweep that only ties serial (must be strictly faster)")
	}
	partial := map[string]Measure{"BenchmarkSweepSerial": {NsPerOp: 6e9}}
	if msg := scalingGate(partial); msg != "" {
		t.Errorf("gate fired without both endpoints measured: %s", msg)
	}
}

func TestCompareSorted(t *testing.T) {
	base := map[string]Measure{"Z": {NsPerOp: 1}, "A": {NsPerOp: 1}, "M": {NsPerOp: 1}}
	current := map[string]Measure{"Z": {NsPerOp: 10}, "A": {NsPerOp: 10}, "M": {NsPerOp: 10}}
	regs := compare(base, current, 0.15, 0.10)
	if len(regs) != 3 || regs[0].name != "A" || regs[1].name != "M" || regs[2].name != "Z" {
		t.Fatalf("regressions not name-sorted: %+v", regs)
	}
}

func TestLatestBaseline(t *testing.T) {
	dir := t.TempDir()
	if got, err := latestBaseline(dir); err != nil || got != "" {
		t.Fatalf("empty dir: got %q, %v; want \"\", nil", got, err)
	}
	for _, name := range []string{"BENCH_2026-01-15.json", "BENCH_2026-08-05.json", "BENCH_2025-12-31.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := latestBaseline(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(got) != "BENCH_2026-08-05.json" {
		t.Errorf("latest = %s, want BENCH_2026-08-05.json", filepath.Base(got))
	}
}
