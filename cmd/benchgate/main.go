// Command benchgate is the benchmark regression gate: it runs the root
// bench_test.go suite (or parses a saved `go test -bench` transcript),
// records the results as a dated JSON baseline, and fails when any
// benchmark regressed more than the threshold against the most recent
// committed baseline.
//
// Usage:
//
//	benchgate [flags]
//
//	-bench regexp    benchmarks to run (default "Engine|Sweep")
//	-benchtime t     passed through to go test (default "2s")
//	-count n         runs per benchmark; the minimum ns/op is kept, which
//	                 filters scheduler noise on shared hosts (default 3)
//	-dir path        directory holding BENCH_*.json baselines (default ".")
//	-input file      parse a saved `go test -bench` transcript instead of
//	                 running go test ("-" reads stdin)
//	-threshold f     fractional ns/op regression that fails the gate
//	                 (default 0.15)
//	-athreshold f    fractional allocs/op regression that fails the gate
//	                 (default 0.10 — allocation counts are deterministic,
//	                 so the margin only covers map-growth jitter)
//	-write           write BENCH_<date>.json with this run's results
//	-hotbudget path  hotalloc escape budget (relative to -dir) whose
//	                 bench_allocs snapshot is cross-checked (default
//	                 internal/analysis/perflint/hotalloc_budget.json)
//
// Suspected regressions are re-run once (suspects only) and the faster of
// the two measurements kept, so a transient load spike on the host must
// reproduce before it can fail the gate.
//
// The baseline files sort by name, so the lexically largest BENCH_*.json
// is the comparison target. A run with no baseline present reports the
// results and exits 0 (there is nothing to regress against); `make bench`
// keeps a baseline committed so the gate always has teeth in CI.
//
// Two metrics are gated per benchmark: ns/op and — when both the baseline
// and the current run recorded it — allocs/op. Benchmarks present in the
// baseline but not in this run are skipped (they were filtered out by
// -bench); benchmarks new in this run are reported but cannot regress.
//
// The Sweep* worker benchmarks (SweepSerial, SweepJ2, SweepJ4,
// SweepParallel) additionally form the sweep scaling curve: benchgate
// prints it, records it under "sweep_scaling" in the baseline, and gates
// on parallel-beats-serial — the widest parallel sweep must be strictly
// faster than the serial one, so the contention regression that once made
// -j 8 slower than -j 1 can never silently return. This gate needs no
// baseline; it is an absolute property of the current run.
//
// Finally, when the hotalloc escape budget
// (internal/analysis/perflint/hotalloc_budget.json) carries a bench_allocs
// snapshot, the gate cross-checks this run's allocs/op against it: a
// divergence beyond ±25% means the static escape budget was regenerated
// against allocation behavior that no longer exists, and the gate fails
// with a pointer at `go run ./cmd/perflint -write`. A missing budget file
// skips the cross-check silently (the budget is owned by cmd/perflint).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"slices"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Baseline is the on-disk BENCH_<date>.json schema.
type Baseline struct {
	Date       string             `json:"date"`
	GoVersion  string             `json:"go"`
	Benchmarks map[string]Measure `json:"benchmarks"`
	// Scaling is the sweep speedup curve derived from the Sweep* worker
	// benchmarks, recorded so the scaling shape is tracked in-repo.
	Scaling []ScalingPoint `json:"sweep_scaling,omitempty"`
}

// ScalingPoint is one point of the sweep's worker-scaling curve.
type ScalingPoint struct {
	Workers int     `json:"workers"`
	NsPerOp float64 `json:"ns_per_op"`
	// Speedup is serial ns/op over this point's ns/op (1.0 at workers=1).
	Speedup float64 `json:"speedup"`
}

// sweepScaling maps the root sweep benchmarks onto their -j worker counts,
// in curve order.
var sweepScaling = []struct {
	name    string
	workers int
}{
	{"BenchmarkSweepSerial", 1},
	{"BenchmarkSweepJ2", 2},
	{"BenchmarkSweepJ4", 4},
	{"BenchmarkSweepParallel", 8},
}

// Measure is one benchmark's recorded result.
type Measure struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkEngineAlltoall-8   12   102424883 ns/op   1024 B/op   3 allocs/op
//
// The -8 GOMAXPROCS suffix is stripped from the recorded name so baselines
// taken on hosts with different core counts stay comparable.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+([\d.]+) allocs/op)?`)

// parseBench extracts benchmark measurements from `go test -bench` output.
// Repeated names (go test -count > 1) keep the minimum ns/op: the fastest
// run is the least contaminated by scheduler noise on a shared host, so
// the gate compares best-of-N against best-of-N.
func parseBench(r io.Reader) (map[string]Measure, error) {
	out := make(map[string]Measure)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %v", sc.Text(), err)
		}
		if prev, ok := out[m[1]]; ok && prev.NsPerOp <= ns {
			continue
		}
		meas := Measure{NsPerOp: ns}
		if m[3] != "" {
			meas.BytesPerOp, _ = strconv.ParseFloat(m[3], 64)
		}
		if m[4] != "" {
			meas.AllocsPerOp, _ = strconv.ParseFloat(m[4], 64)
		}
		out[m[1]] = meas
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// latestBaseline returns the lexically largest BENCH_*.json in dir, or ""
// when none exists. BENCH_<ISO-date>.json names make lexical order
// chronological.
func latestBaseline(dir string) (string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", err
	}
	if len(matches) == 0 {
		return "", nil
	}
	sort.Strings(matches)
	return matches[len(matches)-1], nil
}

// regression is one benchmark metric that worsened past its threshold.
type regression struct {
	name      string
	metric    string // "ns/op" or "allocs/op"
	base, cur float64
}

// compare diffs current against base and returns the over-threshold
// regressions, sorted by (name, metric) for stable output. ns/op is gated
// by threshold; allocs/op — which is essentially noise-free, unlike wall
// time on a shared host — by allocThreshold, and only when both sides
// recorded an allocation count (the baseline may predate -benchmem).
func compare(base, current map[string]Measure, threshold, allocThreshold float64) []regression {
	var regs []regression
	for name, cur := range current {
		b, ok := base[name]
		if !ok {
			continue
		}
		if b.NsPerOp > 0 && cur.NsPerOp > b.NsPerOp*(1+threshold) {
			regs = append(regs, regression{name, "ns/op", b.NsPerOp, cur.NsPerOp})
		}
		if b.AllocsPerOp > 0 && cur.AllocsPerOp > b.AllocsPerOp*(1+allocThreshold) {
			regs = append(regs, regression{name, "allocs/op", b.AllocsPerOp, cur.AllocsPerOp})
		}
	}
	sort.Slice(regs, func(i, j int) bool {
		if regs[i].name != regs[j].name {
			return regs[i].name < regs[j].name
		}
		return regs[i].metric < regs[j].metric
	})
	return regs
}

// scalingCurve extracts the sweep worker-scaling curve from a result set:
// one point per Sweep* benchmark present, speedups relative to the serial
// point. Returns nil unless the serial benchmark and at least one other
// point were measured.
func scalingCurve(ms map[string]Measure) []ScalingPoint {
	serial, ok := ms[sweepScaling[0].name]
	if !ok || serial.NsPerOp <= 0 {
		return nil
	}
	var curve []ScalingPoint
	for _, s := range sweepScaling {
		m, ok := ms[s.name]
		if !ok || m.NsPerOp <= 0 {
			continue
		}
		curve = append(curve, ScalingPoint{
			Workers: s.workers,
			NsPerOp: m.NsPerOp,
			Speedup: serial.NsPerOp / m.NsPerOp,
		})
	}
	if len(curve) < 2 {
		return nil
	}
	return curve
}

// scalingGate enforces parallel-beats-serial: when both endpoints of the
// curve were measured, the widest parallel sweep must be strictly faster
// than the serial one. Returns "" when the gate passes or does not apply,
// else a description of the violation.
func scalingGate(ms map[string]Measure) string {
	serial, okS := ms[sweepScaling[0].name]
	last := sweepScaling[len(sweepScaling)-1]
	par, okP := ms[last.name]
	if !okS || !okP || serial.NsPerOp <= 0 || par.NsPerOp <= 0 {
		return ""
	}
	if par.NsPerOp >= serial.NsPerOp {
		return fmt.Sprintf("%s (%s) is not faster than %s (%s): the -j %d sweep lost its speedup",
			last.name, secs(par.NsPerOp), sweepScaling[0].name, secs(serial.NsPerOp), last.workers)
	}
	return ""
}

// printScaling renders the curve for humans.
func printScaling(curve []ScalingPoint) {
	if len(curve) == 0 {
		return
	}
	fmt.Printf("benchgate: sweep scaling curve:\n")
	for _, p := range curve {
		fmt.Printf("  -j %-2d %8s  speedup %.2fx\n", p.Workers, secs(p.NsPerOp), p.Speedup)
	}
}

// fmtMetric renders a metric value human-readably: durations for ns/op,
// plain counts for allocs/op.
func fmtMetric(metric string, v float64) string {
	if metric == "ns/op" {
		return secs(v)
	}
	return fmt.Sprintf("%.0f", v)
}

// secs renders nanoseconds human-readably.
func secs(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.1fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}

func run() error {
	bench := flag.String("bench", "Engine|Sweep", "benchmark regexp passed to go test")
	benchtime := flag.String("benchtime", "2s", "benchtime passed to go test")
	count := flag.Int("count", 3, "runs per benchmark; the gate keeps the per-benchmark minimum")
	dir := flag.String("dir", ".", "directory holding BENCH_*.json baselines")
	input := flag.String("input", "", "parse a saved transcript instead of running go test (- for stdin)")
	threshold := flag.Float64("threshold", 0.15, "fractional ns/op regression that fails the gate")
	athreshold := flag.Float64("athreshold", 0.10, "fractional allocs/op regression that fails the gate")
	write := flag.Bool("write", false, "write BENCH_<date>.json with this run's results")
	hotBudget := flag.String("hotbudget", filepath.Join("internal", "analysis", "perflint", "hotalloc_budget.json"),
		"hotalloc escape budget (relative to -dir) whose bench_allocs snapshot is cross-checked; missing file skips the check")
	flag.Parse()

	runBench := func(re string) ([]byte, error) {
		cmd := exec.Command("go", "test", "-run", "^$",
			"-bench", re, "-benchtime", *benchtime,
			"-count", strconv.Itoa(*count), "-benchmem", ".")
		cmd.Dir = *dir
		cmd.Stderr = os.Stderr
		out, err := cmd.Output()
		if err != nil {
			return nil, fmt.Errorf("go test -bench failed: %v", err)
		}
		os.Stdout.Write(out)
		return out, nil
	}

	var raw io.Reader
	switch *input {
	case "":
		out, err := runBench(*bench)
		if err != nil {
			return err
		}
		raw = strings.NewReader(string(out))
	case "-":
		raw = os.Stdin
	default:
		f, err := os.Open(*input)
		if err != nil {
			return err
		}
		defer f.Close()
		raw = f
	}

	current, err := parseBench(raw)
	if err != nil {
		return err
	}
	if len(current) == 0 {
		return fmt.Errorf("no benchmark results found (wrong -bench regexp?)")
	}

	// rerunSuspects re-measures the named benchmarks once and merges the
	// faster measurement into current: a suspect failure on a shared host
	// is usually load, not code, so only failures that reproduce count.
	rerunSuspects := func(names []string) error {
		sort.Strings(names)
		names = slices.Compact(names)
		fmt.Printf("benchgate: %d suspect(s), re-running to confirm: %s\n",
			len(names), strings.Join(names, " "))
		out, err := runBench("^(" + strings.Join(names, "|") + ")$")
		if err != nil {
			return err
		}
		rerun, err := parseBench(strings.NewReader(string(out)))
		if err != nil {
			return err
		}
		for name, m := range rerun {
			if cur, ok := current[name]; !ok || m.NsPerOp < cur.NsPerOp {
				current[name] = m
			}
		}
		return nil
	}

	gateFailed := false
	basePath, err := latestBaseline(*dir)
	if err != nil {
		return err
	}
	if basePath != "" {
		data, err := os.ReadFile(basePath)
		if err != nil {
			return err
		}
		var base Baseline
		if err := json.Unmarshal(data, &base); err != nil {
			return fmt.Errorf("%s: %v", basePath, err)
		}
		regs := compare(base.Benchmarks, current, *threshold, *athreshold)
		if len(regs) > 0 && *input == "" {
			names := make([]string, len(regs))
			for i, r := range regs {
				names[i] = r.name
			}
			if err := rerunSuspects(names); err != nil {
				return err
			}
			regs = compare(base.Benchmarks, current, *threshold, *athreshold)
		}
		fmt.Printf("benchgate: %d benchmarks vs %s (ns %.0f%%, allocs %.0f%%)\n",
			len(current), filepath.Base(basePath), *threshold*100, *athreshold*100)
		for _, r := range regs {
			fmt.Printf("  REGRESSION %s %s: %s -> %s (%+.1f%%)\n",
				r.name, r.metric, fmtMetric(r.metric, r.base), fmtMetric(r.metric, r.cur),
				(r.cur/r.base-1)*100)
		}
		if len(regs) > 0 {
			gateFailed = true
		}
	} else {
		fmt.Printf("benchgate: %d benchmarks, no baseline in %s (nothing to compare)\n", len(current), *dir)
	}

	// The scaling gate needs no baseline: parallel-beats-serial is an
	// absolute property of this run. Like regressions, a first failure is
	// only a suspect — both endpoints are re-measured before it sticks.
	if msg := scalingGate(current); msg != "" && *input == "" {
		if err := rerunSuspects([]string{sweepScaling[0].name, sweepScaling[len(sweepScaling)-1].name}); err != nil {
			return err
		}
	}
	printScaling(scalingCurve(current))
	if msg := scalingGate(current); msg != "" {
		fmt.Printf("  SCALING %s\n", msg)
		gateFailed = true
	}

	// Cross-check the hotalloc escape budget's allocs/op snapshot: the
	// static and the measured view of allocation behavior must not drift
	// apart unnoticed.
	if drifts := budgetDrift(filepath.Join(*dir, *hotBudget), current); len(drifts) > 0 {
		for _, d := range drifts {
			fmt.Printf("  BUDGET-DRIFT %s\n", d)
		}
		gateFailed = true
	}
	if gateFailed && !*write {
		return fmt.Errorf("benchmark gate failed (ns > %.0f%%, allocs > %.0f%%, lost parallel speedup, or escape-budget drift)",
			*threshold*100, *athreshold*100)
	}

	if *write {
		b := Baseline{
			Date:       time.Now().Format("2006-01-02"),
			GoVersion:  runtime.Version(),
			Benchmarks: current,
			Scaling:    scalingCurve(current),
		}
		data, err := json.MarshalIndent(b, "", "\t")
		if err != nil {
			return err
		}
		path := filepath.Join(*dir, "BENCH_"+b.Date+".json")
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("benchgate: wrote %s\n", path)
	}
	return nil
}

// budgetAllocsTolerance is the fractional allocs/op divergence from the
// escape budget's bench_allocs snapshot that fails the gate, in either
// direction: allocations that shot up past the snapshot mean a regression
// the static budget never sanctioned, and allocations that collapsed mean
// the budget documents escape counts for code that no longer allocates
// that way. Wider than -athreshold because the snapshot is only refreshed
// on `perflint -write`, not on every baseline.
const budgetAllocsTolerance = 0.25

// budgetDrift compares this run's allocs/op against the escape budget's
// bench_allocs snapshot and describes each benchmark that diverged past
// the tolerance. A missing budget file (or one without a snapshot) is not
// an error: the budget belongs to cmd/perflint, and repositories mid-
// migration simply skip the cross-check.
func budgetDrift(path string, current map[string]Measure) []string {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var budget struct {
		BenchAllocs map[string]float64 `json:"bench_allocs"`
	}
	if err := json.Unmarshal(data, &budget); err != nil {
		return []string{fmt.Sprintf("%s: unreadable escape budget: %v", path, err)}
	}
	var drifts []string
	names := make([]string, 0, len(budget.BenchAllocs))
	for name := range budget.BenchAllocs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		snap := budget.BenchAllocs[name]
		cur, ok := current[name]
		if !ok || cur.AllocsPerOp == 0 || snap == 0 {
			continue
		}
		if ratio := cur.AllocsPerOp / snap; ratio > 1+budgetAllocsTolerance || ratio < 1-budgetAllocsTolerance {
			drifts = append(drifts, fmt.Sprintf(
				"%s allocs/op %s vs escape-budget snapshot %s (%+.1f%%): the hotalloc budget no longer matches measured allocation behavior — revisit the hot functions and regenerate with `go run ./cmd/perflint -write`",
				name, fmtMetric("allocs/op", cur.AllocsPerOp), fmtMetric("allocs/op", snap), (ratio-1)*100))
		}
	}
	return drifts
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}
