// Command benchgate is the benchmark regression gate: it runs the root
// bench_test.go suite (or parses a saved `go test -bench` transcript),
// records the results as a dated JSON baseline, and fails when any
// benchmark regressed more than the threshold against the most recent
// committed baseline.
//
// Usage:
//
//	benchgate [flags]
//
//	-bench regexp    benchmarks to run (default "Engine|Sweep")
//	-benchtime t     passed through to go test (default "2s")
//	-count n         runs per benchmark; the minimum ns/op is kept, which
//	                 filters scheduler noise on shared hosts (default 3)
//	-dir path        directory holding BENCH_*.json baselines (default ".")
//	-input file      parse a saved `go test -bench` transcript instead of
//	                 running go test ("-" reads stdin)
//	-threshold f     fractional ns/op regression that fails the gate
//	                 (default 0.15)
//	-write           write BENCH_<date>.json with this run's results
//
// Suspected regressions are re-run once (suspects only) and the faster of
// the two measurements kept, so a transient load spike on the host must
// reproduce before it can fail the gate.
//
// The baseline files sort by name, so the lexically largest BENCH_*.json
// is the comparison target. A run with no baseline present reports the
// results and exits 0 (there is nothing to regress against); `make bench`
// keeps a baseline committed so the gate always has teeth in CI.
//
// benchgate compares ns/op only. Benchmarks present in the baseline but
// not in this run are skipped (they were filtered out by -bench);
// benchmarks new in this run are reported but cannot regress.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Baseline is the on-disk BENCH_<date>.json schema.
type Baseline struct {
	Date       string             `json:"date"`
	GoVersion  string             `json:"go"`
	Benchmarks map[string]Measure `json:"benchmarks"`
}

// Measure is one benchmark's recorded result.
type Measure struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkEngineAlltoall-8   12   102424883 ns/op   1024 B/op   3 allocs/op
//
// The -8 GOMAXPROCS suffix is stripped from the recorded name so baselines
// taken on hosts with different core counts stay comparable.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+([\d.]+) allocs/op)?`)

// parseBench extracts benchmark measurements from `go test -bench` output.
// Repeated names (go test -count > 1) keep the minimum ns/op: the fastest
// run is the least contaminated by scheduler noise on a shared host, so
// the gate compares best-of-N against best-of-N.
func parseBench(r io.Reader) (map[string]Measure, error) {
	out := make(map[string]Measure)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %v", sc.Text(), err)
		}
		if prev, ok := out[m[1]]; ok && prev.NsPerOp <= ns {
			continue
		}
		meas := Measure{NsPerOp: ns}
		if m[3] != "" {
			meas.BytesPerOp, _ = strconv.ParseFloat(m[3], 64)
		}
		if m[4] != "" {
			meas.AllocsPerOp, _ = strconv.ParseFloat(m[4], 64)
		}
		out[m[1]] = meas
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// latestBaseline returns the lexically largest BENCH_*.json in dir, or ""
// when none exists. BENCH_<ISO-date>.json names make lexical order
// chronological.
func latestBaseline(dir string) (string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", err
	}
	if len(matches) == 0 {
		return "", nil
	}
	sort.Strings(matches)
	return matches[len(matches)-1], nil
}

// regression is one benchmark that slowed past the threshold.
type regression struct {
	name     string
	base, ns float64
}

// compare diffs current against base and returns the over-threshold
// regressions, sorted by name for stable output.
func compare(base, current map[string]Measure, threshold float64) []regression {
	var regs []regression
	for name, cur := range current {
		b, ok := base[name]
		if !ok || b.NsPerOp <= 0 {
			continue
		}
		if cur.NsPerOp > b.NsPerOp*(1+threshold) {
			regs = append(regs, regression{name, b.NsPerOp, cur.NsPerOp})
		}
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i].name < regs[j].name })
	return regs
}

// secs renders nanoseconds human-readably.
func secs(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.1fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}

func run() error {
	bench := flag.String("bench", "Engine|Sweep", "benchmark regexp passed to go test")
	benchtime := flag.String("benchtime", "2s", "benchtime passed to go test")
	count := flag.Int("count", 3, "runs per benchmark; the gate keeps the per-benchmark minimum")
	dir := flag.String("dir", ".", "directory holding BENCH_*.json baselines")
	input := flag.String("input", "", "parse a saved transcript instead of running go test (- for stdin)")
	threshold := flag.Float64("threshold", 0.15, "fractional ns/op regression that fails the gate")
	write := flag.Bool("write", false, "write BENCH_<date>.json with this run's results")
	flag.Parse()

	runBench := func(re string) ([]byte, error) {
		cmd := exec.Command("go", "test", "-run", "^$",
			"-bench", re, "-benchtime", *benchtime,
			"-count", strconv.Itoa(*count), "-benchmem", ".")
		cmd.Dir = *dir
		cmd.Stderr = os.Stderr
		out, err := cmd.Output()
		if err != nil {
			return nil, fmt.Errorf("go test -bench failed: %v", err)
		}
		os.Stdout.Write(out)
		return out, nil
	}

	var raw io.Reader
	switch *input {
	case "":
		out, err := runBench(*bench)
		if err != nil {
			return err
		}
		raw = strings.NewReader(string(out))
	case "-":
		raw = os.Stdin
	default:
		f, err := os.Open(*input)
		if err != nil {
			return err
		}
		defer f.Close()
		raw = f
	}

	current, err := parseBench(raw)
	if err != nil {
		return err
	}
	if len(current) == 0 {
		return fmt.Errorf("no benchmark results found (wrong -bench regexp?)")
	}

	basePath, err := latestBaseline(*dir)
	if err != nil {
		return err
	}
	if basePath != "" {
		data, err := os.ReadFile(basePath)
		if err != nil {
			return err
		}
		var base Baseline
		if err := json.Unmarshal(data, &base); err != nil {
			return fmt.Errorf("%s: %v", basePath, err)
		}
		regs := compare(base.Benchmarks, current, *threshold)
		// A suspect slowdown on a shared host is usually load, not code:
		// re-run only the suspects once and keep the faster measurement.
		// Only confirmed regressions — slow in both passes — fail the gate.
		if len(regs) > 0 && *input == "" {
			names := make([]string, len(regs))
			for i, r := range regs {
				names[i] = r.name
			}
			fmt.Printf("benchgate: %d suspect(s), re-running to confirm: %s\n",
				len(names), strings.Join(names, " "))
			out, err := runBench("^(" + strings.Join(names, "|") + ")$")
			if err != nil {
				return err
			}
			rerun, err := parseBench(strings.NewReader(string(out)))
			if err != nil {
				return err
			}
			for name, m := range rerun {
				if cur, ok := current[name]; !ok || m.NsPerOp < cur.NsPerOp {
					current[name] = m
				}
			}
			regs = compare(base.Benchmarks, current, *threshold)
		}
		fmt.Printf("benchgate: %d benchmarks vs %s (threshold %.0f%%)\n",
			len(current), filepath.Base(basePath), *threshold*100)
		for _, r := range regs {
			fmt.Printf("  REGRESSION %s: %s -> %s (%+.1f%%)\n",
				r.name, secs(r.base), secs(r.ns), (r.ns/r.base-1)*100)
		}
		if len(regs) > 0 && !*write {
			return fmt.Errorf("%d benchmark(s) regressed more than %.0f%%", len(regs), *threshold*100)
		}
	} else {
		fmt.Printf("benchgate: %d benchmarks, no baseline in %s (nothing to compare)\n", len(current), *dir)
	}

	if *write {
		b := Baseline{
			Date:       time.Now().Format("2006-01-02"),
			GoVersion:  runtime.Version(),
			Benchmarks: current,
		}
		data, err := json.MarshalIndent(b, "", "\t")
		if err != nil {
			return err
		}
		path := filepath.Join(*dir, "BENCH_"+b.Date+".json")
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("benchgate: wrote %s\n", path)
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}
