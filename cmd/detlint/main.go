// Detlint is the static analysis gate for this repository, packaged as a
// go vet tool: the determinism suite (package detlint), the
// performance-and-concurrency suite (package perflint) and the
// scalability suite (package scalelint) in one binary. Build it once,
// then point go vet at it:
//
//	go build -o bin/detlint ./cmd/detlint
//	go vet -vettool=bin/detlint ./...
//
// or simply `make lint` (human output) / `make analyze` (-json output
// plus the budget/schema gates and per-analyzer stats). See packages
// detlint, perflint and scalelint for the analyzers and the
// //detlint:allow suppression protocol they share.
package main

import (
	"columbia/internal/analysis"
	"columbia/internal/analysis/detlint"
	"columbia/internal/analysis/perflint"
	"columbia/internal/analysis/scalelint"
	"columbia/internal/analysis/unitchecker"
)

func main() {
	suite := make([]*analysis.Analyzer, 0, len(detlint.Suite)+len(perflint.Suite)+len(scalelint.Suite))
	suite = append(suite, detlint.Suite...)
	suite = append(suite, perflint.Suite...)
	suite = append(suite, scalelint.Suite...)
	known := append(append(detlint.Names(), perflint.Names()...), scalelint.Names()...)
	unitchecker.Main("detlint", suite, known)
}
