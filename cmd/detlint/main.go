// Detlint is the determinism lint suite for this repository, packaged as
// a go vet tool. Build it once, then point go vet at it:
//
//	go build -o bin/detlint ./cmd/detlint
//	go vet -vettool=bin/detlint ./...
//
// or simply `make lint`. See package detlint for the analyzers and the
// //detlint:allow suppression protocol.
package main

import (
	"columbia/internal/analysis/detlint"
	"columbia/internal/analysis/unitchecker"
)

func main() {
	unitchecker.Main("detlint", detlint.Suite, detlint.Names())
}
